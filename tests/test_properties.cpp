// Unit tests of the property checkers themselves: each checker must fire on
// hand-built violating records and stay quiet on clean ones. A checker that
// cannot detect a planted violation would silently bless broken protocols.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "props/checkers.hpp"
#include "props/label.hpp"
#include "props/online.hpp"

namespace xcp::props {
namespace {

using proto::ParticipantOutcome;
using proto::RunRecord;

Amount gen(std::int64_t u) { return Amount(u, Currency::generic()); }

/// Builds a minimal clean record: n = 2 (alice, chloe_1, bob + two escrows),
/// successful payment with commission 5 (alice -105, chloe +5, bob +100).
RunRecord clean_record() {
  RunRecord r;
  r.protocol = "synthetic";
  r.spec = proto::DealSpec::uniform(1, 2, 100, 5);
  for (std::uint32_t i = 0; i <= 2; ++i) {
    r.parts.customers.push_back(sim::ProcessId(i));
  }
  for (std::uint32_t i = 3; i <= 4; ++i) {
    r.parts.escrows.push_back(sim::ProcessId(i));
  }
  auto add = [&](std::uint32_t pid, std::string role, bool is_escrow,
                 int index, std::int64_t initial, std::int64_t final_units) {
    ParticipantOutcome p;
    p.pid = sim::ProcessId(pid);
    p.role = std::move(role);
    p.is_escrow = is_escrow;
    p.index = index;
    p.terminated = true;
    p.terminated_global = TimePoint::origin() + Duration::seconds(1);
    p.terminated_local = p.terminated_global;
    p.final_state = "done";
    if (initial != 0) p.initial_holdings = {gen(initial)};
    if (final_units != 0) p.final_holdings = {gen(final_units)};
    r.participants.push_back(std::move(p));
  };
  add(0, "alice", false, 0, 105, 0);
  add(1, "chloe_1", false, 1, 100, 105);
  add(2, "bob", false, 2, 0, 100);
  add(3, "escrow_0", true, 0, 0, 0);
  add(4, "escrow_1", true, 1, 0, 0);
  // Alice holds chi; bob issued it.
  r.participants[0].received_payment_cert = true;
  r.participants[2].issued_payment_cert = true;
  r.stats.drained = true;
  r.stats.end_time = TimePoint::origin() + Duration::seconds(2);
  return r;
}

TEST(Checkers, CleanRecordPassesEverything) {
  const RunRecord r = clean_record();
  EXPECT_TRUE(check_conservation(r).holds);
  EXPECT_TRUE(check_escrow_security(r).holds);
  EXPECT_TRUE(check_cs1(r, false).holds);
  EXPECT_TRUE(check_cs2(r, false).holds);
  EXPECT_TRUE(check_cs3(r).holds);
  CheckOptions opts;
  opts.time_bounded = false;  // synthetic record has no schedule
  EXPECT_TRUE(check_strong_liveness(r, opts).holds);
  EXPECT_TRUE(check_certificate_consistency(r).holds);
}

TEST(Checkers, ConservationHandlesManyCurrencies) {
  // Past the 64-currency inline accumulator: the spill path must still
  // produce a verdict (the old std::map handled any count), and report
  // violations in currency-id order across the inline/overflow boundary.
  RunRecord r = clean_record();
  for (std::uint16_t c = 100; c < 200; ++c) {
    r.participants[0].initial_holdings.push_back(Amount(1, Currency(c)));
    r.participants[1].final_holdings.push_back(Amount(1, Currency(c)));
  }
  EXPECT_TRUE(check_conservation(r).holds);
  // Unbalance one inline-region currency (120: among the first 64 seen)
  // and one overflow-region currency (199): both must be reported, lowest
  // id first — the order the old std::map walk produced.
  RunRecord bad = clean_record();
  for (std::uint16_t c = 100; c < 200; ++c) {
    bad.participants[0].initial_holdings.push_back(Amount(1, Currency(c)));
    bad.participants[1].final_holdings.push_back(Amount(1, Currency(c)));
  }
  bad.participants[1].final_holdings.pop_back(); // CUR199 short -1 (overflow)
  bad.participants[2].final_holdings.push_back(
      Amount(2, Currency(120)));                 // CUR120 minted +2 (inline)
  const auto res = check_conservation(bad);
  EXPECT_FALSE(res.holds);
  ASSERT_EQ(res.violations.size(), 2u);
  EXPECT_NE(res.violations[0].find("CUR120"), std::string::npos)
      << res.violations[0];
  EXPECT_NE(res.violations[0].find("net 2"), std::string::npos)
      << res.violations[0];
  EXPECT_NE(res.violations[1].find("CUR199"), std::string::npos)
      << res.violations[1];
  EXPECT_NE(res.violations[1].find("net -1"), std::string::npos)
      << res.violations[1];
}

TEST(Checkers, ConservationDetectsMintedValue) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings = {gen(150)};  // bob magically richer
  const auto res = check_conservation(r);
  EXPECT_FALSE(res.holds);
  EXPECT_FALSE(res.violations.empty());
}

TEST(Checkers, EscrowSecurityDetectsEscrowLoss) {
  RunRecord r = clean_record();
  r.participants[3].initial_holdings = {gen(50)};
  r.participants[3].final_holdings = {gen(20)};  // escrow_0 lost 30
  EXPECT_FALSE(check_escrow_security(r).holds);
}

TEST(Checkers, EscrowSecuritySkipsByzantineEscrows) {
  RunRecord r = clean_record();
  r.participants[3].initial_holdings = {gen(50)};
  r.participants[3].final_holdings = {gen(20)};
  r.participants[3].abiding = false;  // its own fault
  EXPECT_TRUE(check_escrow_security(r).holds);
}

TEST(Checkers, Cs1FiresOnMoneyGoneWithoutCert) {
  RunRecord r = clean_record();
  r.participants[0].received_payment_cert = false;  // alice paid, no chi
  EXPECT_FALSE(check_cs1(r, false).holds);
  // But not applicable when her escrow deviates.
  r.participants[3].abiding = false;
  EXPECT_FALSE(check_cs1(r, false).applicable);
}

TEST(Checkers, Cs1NotEvaluatedBeforeTermination) {
  RunRecord r = clean_record();
  r.participants[0].received_payment_cert = false;
  r.participants[0].terminated = false;  // "upon termination" only
  EXPECT_TRUE(check_cs1(r, false).holds);
}

TEST(Checkers, Cs2FiresWhenBobIssuedButUnpaid) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // unpaid
  EXPECT_FALSE(check_cs2(r, false).holds);
  // If he never issued chi, being unpaid is fine.
  r.participants[2].issued_payment_cert = false;
  EXPECT_TRUE(check_cs2(r, false).holds);
}

TEST(Checkers, Cs2WeakFormAcceptsAbortCert) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();
  r.participants[2].received_abort_cert = true;
  EXPECT_TRUE(check_cs2(r, true).holds);
  r.participants[2].received_abort_cert = false;
  EXPECT_FALSE(check_cs2(r, true).holds);
}

TEST(Checkers, Cs3FiresOnConnectorLoss) {
  RunRecord r = clean_record();
  r.participants[1].final_holdings = {gen(40)};  // chloe down 60
  EXPECT_FALSE(check_cs3(r).holds);
}

TEST(Checkers, Cs3AcceptsRefundOutcome) {
  RunRecord r = clean_record();
  r.participants[1].final_holdings = {gen(100)};  // net 0: refunded
  EXPECT_TRUE(check_cs3(r).holds);
}

TEST(Checkers, Cs3CrossCurrencyPaidThrough) {
  RunRecord r = clean_record();
  r.spec = proto::DealSpec::explicit_hops(
      1, {Amount(105, Currency::usd()), Amount(100, Currency::eur())});
  // chloe paid 100 EUR out, received 105 USD.
  r.participants[1].initial_holdings = {Amount(100, Currency::eur())};
  r.participants[1].final_holdings = {Amount(105, Currency::usd())};
  EXPECT_TRUE(check_cs3(r).holds);
  // chloe paid out but upstream never delivered: violation.
  r.participants[1].final_holdings = {};
  EXPECT_FALSE(check_cs3(r).holds);
}

TEST(Checkers, StrongLivenessOnlyAppliesWhenAllAbide) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // bob unpaid
  CheckOptions opts;
  EXPECT_FALSE(check_strong_liveness(r, opts).holds);
  r.participants[1].abiding = false;
  EXPECT_FALSE(check_strong_liveness(r, opts).applicable);
  r.participants[1].abiding = true;
  opts.environment_conforms = false;
  EXPECT_FALSE(check_strong_liveness(r, opts).applicable);
}

TEST(Checkers, CertificateConsistencyDetectsBoth) {
  RunRecord r = clean_record();
  TraceEvent commit;
  commit.kind = EventKind::kDecide;
  commit.label = "commit";
  TraceEvent abort;
  abort.kind = EventKind::kDecide;
  abort.label = "abort";
  r.trace.record(commit);
  EXPECT_TRUE(check_certificate_consistency(r).holds);
  r.trace.record(abort);
  EXPECT_FALSE(check_certificate_consistency(r).holds);
}

TEST(Checkers, CertificateConsistencyDetectsConflictingHoldings) {
  RunRecord r = clean_record();
  r.participants[0].received_commit_cert = true;
  r.participants[2].received_abort_cert = true;
  EXPECT_FALSE(check_certificate_consistency(r).holds);
}

TEST(Checkers, TerminationRequiresPayersToTerminate) {
  RunRecord r = clean_record();
  // alice made a payment (trace transfer) but never terminated.
  TraceEvent t;
  t.kind = EventKind::kTransfer;
  t.actor = r.parts.customers[0];
  r.trace.record(t);
  r.participants[0].terminated = false;
  CheckOptions opts;
  opts.time_bounded = false;
  EXPECT_FALSE(check_termination(r, opts).holds);
  r.participants[0].terminated = true;
  EXPECT_TRUE(check_termination(r, opts).holds);
}

TEST(Checkers, TerminationNotApplicableWhenNobodyActed) {
  RunRecord r = clean_record();
  CheckOptions opts;
  opts.time_bounded = false;
  // No transfers or cert issuance in the trace at all.
  r.participants[2].issued_payment_cert = false;
  EXPECT_FALSE(check_termination(r, opts).applicable);
}

TEST(Checkers, WeakLivenessSkippedAfterAbortRequest) {
  RunRecord r = clean_record();
  r.participants[2].final_holdings.clear();  // bob unpaid
  CheckOptions opts;
  EXPECT_FALSE(check_weak_liveness(r, opts).holds);
  TraceEvent e;
  e.kind = EventKind::kAbortRequested;
  r.trace.record(e);
  EXPECT_FALSE(check_weak_liveness(r, opts).applicable);
}

TEST(Checkers, ReportAggregation) {
  RunRecord r = clean_record();
  CheckOptions opts;
  opts.time_bounded = false;
  auto report = check_definition1(r, opts);
  EXPECT_TRUE(report.all_hold()) << report.str();
  EXPECT_TRUE(report.failed().empty());

  r.participants[1].final_holdings = {gen(40)};
  r.participants[2].final_holdings = {gen(165)};  // keep conservation intact
  report = check_definition1(r, opts);
  EXPECT_FALSE(report.all_hold());
  const auto failed = report.failed();
  EXPECT_NE(std::find(failed.begin(), failed.end(), "CS3"), failed.end());
}

// ------------------------------------------------ label/arena differential

namespace legacy {

/// The seed implementation of the trace pipeline, kept verbatim as the
/// reference side of the differential tests: string labels, one monolithic
/// vector, O(n) scans. The arena/interner rebuild must render and answer
/// queries byte-identically to this.
struct Event {
  EventKind kind = EventKind::kCustom;
  TimePoint at;
  TimePoint local_at;
  sim::ProcessId actor;
  sim::ProcessId peer;
  std::string label;
  std::optional<Amount> amount;
  std::uint64_t deal_id = 0;

  std::string str() const {
    std::ostringstream os;
    os << at.str() << " " << event_kind_name(kind) << " actor=p"
       << actor.value();
    if (peer.valid()) os << " peer=p" << peer.value();
    if (!label.empty()) os << " [" << label << "]";
    if (amount) os << " " << amount->str();
    return os.str();
  }
};

struct Recorder {
  std::vector<Event> events;

  void record(Event e) { events.push_back(std::move(e)); }
  std::size_t count(EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == kind);
    return n;
  }
  std::size_t count(EventKind kind, sim::ProcessId actor) const {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == kind && e.actor == actor);
    return n;
  }
  std::size_t count_label(EventKind kind, const std::string& label) const {
    std::size_t n = 0;
    for (const auto& e : events) n += (e.kind == kind && e.label == label);
    return n;
  }
  const Event* first(EventKind kind, sim::ProcessId actor) const {
    for (const auto& e : events) {
      if (e.kind == kind && e.actor == actor) return &e;
    }
    return nullptr;
  }
  std::vector<const Event*> all(EventKind kind) const {
    std::vector<const Event*> out;
    for (const auto& e : events) {
      if (e.kind == kind) out.push_back(&e);
    }
    return out;
  }
  std::string render(std::size_t max_lines = 200) const {
    std::ostringstream os;
    std::size_t n = 0;
    for (const auto& e : events) {
      if (n++ >= max_lines) {
        os << "... (" << events.size() - max_lines << " more)\n";
        break;
      }
      os << e.str() << "\n";
    }
    return os.str();
  }
};

}  // namespace legacy

/// A deterministic event stream shaped like a protocol run, fed to both
/// recorders. Exercises every kind, multi-chunk storage (the count spans
/// several 16 KB chunks), optional amounts, deal ids and repeated labels.
template <typename RecordFn>
void feed_scenario(RecordFn&& rec) {
  const char* labels[] = {"G", "P", "$", "chi", "chi_c", "chi_a",
                          "commit", "abort", "await_chi", "done"};
  for (int i = 0; i < 1500; ++i) {
    const auto kind = static_cast<EventKind>(i % kEventKindCount);
    TimePoint at = TimePoint::micros(17 * i);
    sim::ProcessId actor(static_cast<std::uint32_t>(i % 9));
    sim::ProcessId peer;
    if (i % 3 != 0) peer = sim::ProcessId(static_cast<std::uint32_t>(i % 5));
    std::optional<Amount> amount;
    if (i % 4 == 0) amount = Amount(i, Currency::usd());
    const char* label = (i % 2 == 0) ? labels[i % 10] : "";
    rec(kind, at, actor, peer, label, amount,
        static_cast<std::uint64_t>(i % 3));
  }
}

TEST(Trace, DifferentialAgainstLegacyStringRecorder) {
  TraceRecorder now;
  legacy::Recorder then;
  feed_scenario([&](EventKind kind, TimePoint at, sim::ProcessId actor,
                    sim::ProcessId peer, const char* label,
                    std::optional<Amount> amount, std::uint64_t deal) {
    TraceEvent e;
    e.kind = kind;
    e.at = at;
    e.local_at = at;
    e.actor = actor;
    e.peer = peer;
    e.label = label[0] == '\0' ? Label() : Label(label);
    e.amount = amount;
    e.deal_id = deal;
    now.record(e);
    legacy::Event o;
    o.kind = kind;
    o.at = at;
    o.local_at = at;
    o.actor = actor;
    o.peer = peer;
    o.label = label;
    o.amount = amount;
    o.deal_id = deal;
    then.record(std::move(o));
  });

  // Rendering must be byte-identical (the interned label resolves to the
  // same text), for the default line cap and for full dumps.
  ASSERT_EQ(now.size(), then.events.size());
  EXPECT_EQ(now.render(), then.render());
  EXPECT_EQ(now.render(100000), then.render(100000));

  // Every query form must agree with the legacy O(n) scans.
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_EQ(now.count(kind), then.count(kind)) << k;
    EXPECT_EQ(now.all(kind).size(), then.all(kind).size()) << k;
    for (std::uint32_t a = 0; a < 9; ++a) {
      const sim::ProcessId actor(a);
      EXPECT_EQ(now.count(kind, actor), then.count(kind, actor));
      const TraceEvent* f = now.first(kind, actor);
      const legacy::Event* g = then.first(kind, actor);
      ASSERT_EQ(f == nullptr, g == nullptr);
      if (f != nullptr) EXPECT_EQ(f->str(), g->str());
    }
    for (const char* l : {"G", "chi", "commit", "abort", "nope"}) {
      EXPECT_EQ(now.count_label(kind, l), then.count_label(kind, l));
    }
  }

  // all() walks the kind index in record order, mirroring the legacy scan.
  const auto now_decides = now.all(EventKind::kDecide);
  const auto then_decides = then.all(EventKind::kDecide);
  ASSERT_EQ(now_decides.size(), then_decides.size());
  for (std::size_t i = 0; i < now_decides.size(); ++i) {
    EXPECT_EQ(now_decides[i]->str(), then_decides[i]->str());
  }
}

TEST(Trace, EventListIndexingAndIterationAgree) {
  TraceRecorder t;
  for (int i = 0; i < 1200; ++i) {  // > 2 chunks of events
    TraceEvent e;
    e.kind = EventKind::kSend;
    e.at = TimePoint::micros(i);
    e.actor = sim::ProcessId(static_cast<std::uint32_t>(i));
    t.record(e);
  }
  const auto list = t.events();
  ASSERT_EQ(list.size(), 1200u);
  std::size_t i = 0;
  for (const TraceEvent& e : list) {
    EXPECT_EQ(e.actor.value(), i);
    EXPECT_EQ(&e, &list[i]);
    ++i;
  }
  EXPECT_EQ(i, 1200u);
}

TEST(Trace, ClearRetainsChunksAndCloneRebuildsIndexes) {
  TraceRecorder t;
  TraceEvent e;
  e.kind = EventKind::kDecide;
  e.label = labels::commit;
  t.record(e);
  const TraceRecorder copy = t.clone();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.count(EventKind::kDecide), 0u);
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy.count(EventKind::kDecide), 1u);
  EXPECT_EQ(copy.all(EventKind::kDecide)[0]->label, labels::commit);
  // Refill after clear: indexes rebuild from scratch.
  t.record(e);
  t.record(e);
  EXPECT_EQ(t.count(EventKind::kDecide), 2u);
}

TEST(Trace, KindRangeIndexingMatchesIteration) {
  // The allocation-free KindRange replaced the all_vector() shim outright;
  // this pins the contract the shim's test used to pin: record order, one
  // entry per matching event, operator[] consistent with iteration — across
  // a chunk boundary of the pointer index (> kPtrsPerChunk sends).
  TraceRecorder t;
  const int kSends = 3000;  // > one 16 KB pointer chunk of index entries
  for (int i = 0; i < 2 * kSends; ++i) {
    TraceEvent e;
    e.kind = (i % 2 == 0) ? EventKind::kSend : EventKind::kDeliver;
    e.actor = sim::ProcessId(static_cast<std::uint32_t>(i));
    t.record(e);
  }
  const auto range = t.all(EventKind::kSend);
  ASSERT_EQ(range.size(), static_cast<std::size_t>(kSends));
  std::size_t i = 0;
  for (const TraceEvent* e : range) {
    EXPECT_EQ(e->actor.value(), 2 * i);  // record order preserved
    EXPECT_EQ(range[i], e);              // operator[] agrees with iteration
    ++i;
  }
  EXPECT_EQ(i, static_cast<std::size_t>(kSends));
}

TEST(Trace, FindIsNonInsertingAndMatchesNothingWhenAbsent) {
  TraceRecorder t;
  TraceEvent unlabeled;
  unlabeled.kind = EventKind::kSend;
  t.record(unlabeled);  // label id 0 (empty)
  TraceEvent labeled;
  labeled.kind = EventKind::kSend;
  labeled.label = "find-test-present";
  t.record(labeled);

  // A known name resolves to the same label without inserting anything.
  EXPECT_EQ(Label::find("find-test-present"), Label("find-test-present"));
  EXPECT_EQ(t.count_label(EventKind::kSend, Label::find("find-test-present")),
            1u);

  // A never-interned probe matches nothing — in particular NOT the
  // unlabeled (id 0) event — and does not grow the table: a second find
  // still comes back absent.
  const Label absent = Label::find("find-test-never-interned");
  EXPECT_NE(absent, Label());
  EXPECT_EQ(t.count_label(EventKind::kSend, absent), 0u);
  EXPECT_EQ(t.first_label(EventKind::kSend, absent), nullptr);
  EXPECT_EQ(Label::find("find-test-never-interned"), absent);
  EXPECT_EQ(Label::find("find-test-never-interned").value(),
            support::kNameNotFound);
}

// ------------------------------------------------- online checker fuzzing

/// Randomized differential: 1000+ fuzzed traces, each fed (a) incrementally
/// through an OnlineMonitor — the live path — and (b) to an independent
/// straight-line reimplementation of each property in this test. Verdicts,
/// decided-at times and deciding event ordinals must match exactly; the
/// batch checkers must agree wherever they consume the same evidence. This
/// is the guarantee that lets early-stopped runs claim post-mortem
/// verdicts.
TEST(Online, FuzzedTraceDifferential) {
  std::mt19937_64 rng(0xA11CE);
  constexpr int kTraces = 1200;

  for (int t = 0; t < kTraces; ++t) {
    // A random cast of 2..8 participants; Bob is the last one.
    const std::uint32_t cast_n = 2 + static_cast<std::uint32_t>(rng() % 7);
    const sim::ProcessId bob(cast_n - 1);
    const Amount last_hop(100 + static_cast<std::int64_t>(rng() % 50),
                          Currency::generic());
    const std::uint64_t deal = 1 + rng() % 3;

    OnlineMonitor::Config cfg;
    cfg.deal_id = deal;
    cfg.bob = bob;
    cfg.last_hop = last_hop;
    for (std::uint32_t p = 0; p < cast_n; ++p) {
      cfg.cast.push_back(sim::ProcessId(p));
    }
    OnlineMonitor monitor(cfg);

    // A random event stream, weighted towards the checker-relevant kinds,
    // with a noise floor of sends/delivers.
    const int len = 16 + static_cast<int>(rng() % 150);
    std::vector<TraceEvent> stream;
    for (int i = 0; i < len; ++i) {
      TraceEvent e;
      e.at = TimePoint::micros(17 * i + static_cast<std::int64_t>(rng() % 5));
      e.local_at = e.at;
      e.actor = sim::ProcessId(static_cast<std::uint32_t>(rng() % (cast_n + 2)));
      e.peer = sim::ProcessId(static_cast<std::uint32_t>(rng() % (cast_n + 2)));
      switch (rng() % 8) {
        case 0:
          e.kind = EventKind::kTerminate;
          break;
        case 1: {
          e.kind = EventKind::kTransfer;
          const bool other_currency = rng() % 4 == 0;
          e.amount = Amount(static_cast<std::int64_t>(rng() % 120),
                            other_currency ? Currency::usd()
                                           : Currency::generic());
          break;
        }
        case 2:
          e.kind = EventKind::kDecide;
          e.label = (rng() % 2 == 0) ? labels::commit : labels::abort_;
          e.deal_id = rng() % 4;  // 0 = unscoped, may or may not match
          break;
        case 3:
          e.kind = EventKind::kAbortRequested;
          break;
        default:
          e.kind = (rng() % 2 == 0) ? EventKind::kSend : EventKind::kDeliver;
          e.label = labels::chi;
          break;
      }
      stream.push_back(e);
      monitor.on_record(e);
    }

    // Independent straight-line evaluation of each property.
    // Termination: earliest index after which every cast pid terminated.
    {
      std::vector<bool> seen(cast_n, false);
      std::size_t pending = cast_n;
      std::int64_t decide_ix = -1;
      for (std::size_t i = 0; i < stream.size() && decide_ix < 0; ++i) {
        const TraceEvent& e = stream[i];
        if (e.kind == EventKind::kTerminate && e.actor.value() < cast_n &&
            !seen[e.actor.value()]) {
          seen[e.actor.value()] = true;
          if (--pending == 0) decide_ix = static_cast<std::int64_t>(i);
        }
      }
      const auto& term = monitor.termination();
      if (decide_ix >= 0) {
        EXPECT_EQ(term.verdict(), Verdict::kHolds);
        EXPECT_EQ(term.decided_seq(), static_cast<std::uint64_t>(decide_ix));
        EXPECT_EQ(term.decided_at(),
                  stream[static_cast<std::size_t>(decide_ix)].at);
      } else {
        EXPECT_EQ(term.verdict(), Verdict::kUndecided);
        EXPECT_EQ(term.final_verdict(), Verdict::kViolated);
      }
    }
    // Liveness: earliest index where Bob's running net inflow in the hop
    // currency reaches the hop amount.
    {
      std::int64_t net = 0;
      std::int64_t decide_ix = -1;
      for (std::size_t i = 0; i < stream.size() && decide_ix < 0; ++i) {
        const TraceEvent& e = stream[i];
        if (e.kind != EventKind::kTransfer || !e.amount ||
            e.amount->currency() != last_hop.currency()) {
          continue;
        }
        if (e.peer == bob) net += e.amount->units();
        if (e.actor == bob) net -= e.amount->units();
        if (net >= last_hop.units()) decide_ix = static_cast<std::int64_t>(i);
      }
      const auto& live = monitor.liveness();
      if (decide_ix >= 0) {
        EXPECT_EQ(live.verdict(), Verdict::kHolds);
        EXPECT_EQ(live.decided_seq(), static_cast<std::uint64_t>(decide_ix));
        EXPECT_EQ(live.decided_at(),
                  stream[static_cast<std::size_t>(decide_ix)].at);
      } else {
        EXPECT_EQ(live.final_verdict(), Verdict::kViolated);
      }
    }
    // CC: earliest index where both commit and abort were decided in scope.
    {
      bool commit = false;
      bool abort_seen = false;
      std::int64_t decide_ix = -1;
      for (std::size_t i = 0; i < stream.size() && decide_ix < 0; ++i) {
        const TraceEvent& e = stream[i];
        if (e.kind != EventKind::kDecide) continue;
        if (e.deal_id != 0 && e.deal_id != deal) continue;
        commit = commit || e.label == labels::commit;
        abort_seen = abort_seen || e.label == labels::abort_;
        if (commit && abort_seen) decide_ix = static_cast<std::int64_t>(i);
      }
      const auto& cc = monitor.cert_consistency();
      if (decide_ix >= 0) {
        EXPECT_EQ(cc.verdict(), Verdict::kViolated);
        EXPECT_EQ(cc.decided_seq(), static_cast<std::uint64_t>(decide_ix));
      } else {
        EXPECT_EQ(cc.final_verdict(), Verdict::kHolds);
      }
    }
    // Abort freedom: the first abort request decides.
    {
      std::int64_t decide_ix = -1;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (stream[i].kind == EventKind::kAbortRequested) {
          decide_ix = static_cast<std::int64_t>(i);
          break;
        }
      }
      const auto& aborts = monitor.abort_freedom();
      if (decide_ix >= 0) {
        EXPECT_EQ(aborts.verdict(), Verdict::kViolated);
        EXPECT_EQ(aborts.decided_seq(), static_cast<std::uint64_t>(decide_ix));
      } else {
        EXPECT_EQ(aborts.final_verdict(), Verdict::kHolds);
      }
    }
    // Batch agreement: the thin-replay batch checkers answer from the same
    // evidence — build a RunRecord around the trace and cross-check.
    {
      proto::RunRecord r;
      r.spec = proto::DealSpec::uniform(deal, 2, 100, 5);
      for (const TraceEvent& e : stream) r.trace.record(e);
      const auto cc_batch = check_certificate_consistency(r);
      EXPECT_EQ(cc_batch.holds,
                monitor.cert_consistency().final_verdict() == Verdict::kHolds)
          << "trace " << t;
      EXPECT_EQ(r.trace.count(EventKind::kAbortRequested) > 0,
                monitor.abort_freedom().final_verdict() == Verdict::kViolated);
    }
  }
}

TEST(Online, MonitorRidesTraceRecorderSink) {
  // The monitor observes through TraceRecorder::record() — the exact wiring
  // the runners use — not by being fed separately.
  OnlineMonitor::Config cfg;
  cfg.bob = sim::ProcessId(1);
  cfg.last_hop = Amount(100, Currency::generic());
  cfg.cast = {sim::ProcessId(0), sim::ProcessId(1)};
  OnlineMonitor monitor(cfg);

  sim::StopToken token;
  monitor.arm_stop(&token);

  TraceRecorder trace;
  trace.set_sink(&monitor);

  TraceEvent pay;
  pay.kind = EventKind::kTransfer;
  pay.at = TimePoint::micros(10);
  pay.actor = sim::ProcessId(0);
  pay.peer = sim::ProcessId(1);
  pay.amount = Amount(100, Currency::generic());
  trace.record(pay);
  EXPECT_EQ(monitor.liveness().verdict(), Verdict::kHolds);
  EXPECT_FALSE(token.stop_requested);  // cast not yet quiescent

  TraceEvent done;
  done.kind = EventKind::kTerminate;
  done.at = TimePoint::micros(20);
  done.actor = sim::ProcessId(0);
  trace.record(done);
  EXPECT_FALSE(token.stop_requested);
  done.actor = sim::ProcessId(1);
  done.at = TimePoint::micros(30);
  trace.record(done);
  // The second terminate completes the cast: the stop latches with the
  // deciding event's timestamp.
  EXPECT_TRUE(token.stop_requested);
  EXPECT_EQ(token.requested_at, TimePoint::micros(30));
  EXPECT_TRUE(monitor.quiescent());
  const OnlineOutcome o = monitor.outcome();
  EXPECT_TRUE(o.early_stopped);
  EXPECT_EQ(o.termination, Verdict::kHolds);
  EXPECT_EQ(o.liveness, Verdict::kHolds);
  EXPECT_EQ(o.cert_consistency, Verdict::kHolds);
  EXPECT_EQ(o.abort_freedom, Verdict::kHolds);
  EXPECT_EQ(o.decided_at, TimePoint::micros(30));
  EXPECT_EQ(o.events_seen, 3u);
  trace.set_sink(nullptr);
}

TEST(Trace, QueryHelpers) {
  TraceRecorder t;
  TraceEvent a;
  a.kind = EventKind::kSend;
  a.actor = sim::ProcessId(1);
  a.label = "chi";
  t.record(a);
  TraceEvent b;
  b.kind = EventKind::kSend;
  b.actor = sim::ProcessId(2);
  b.label = "G";
  t.record(b);
  EXPECT_EQ(t.count(EventKind::kSend), 2u);
  EXPECT_EQ(t.count(EventKind::kSend, sim::ProcessId(1)), 1u);
  EXPECT_EQ(t.count_label(EventKind::kSend, "chi"), 1u);
  ASSERT_NE(t.first(EventKind::kSend, sim::ProcessId(2)), nullptr);
  EXPECT_EQ(t.first(EventKind::kSend, sim::ProcessId(2))->label, "G");
  EXPECT_EQ(t.all(EventKind::kSend).size(), 2u);
  EXPECT_EQ(t.first_label(EventKind::kSend, "nope"), nullptr);
}

}  // namespace
}  // namespace xcp::props
