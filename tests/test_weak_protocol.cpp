// End-to-end tests of the weak-liveness protocol (Def. 2 / Thm 3) across the
// three transaction-manager back-ends.

#include <gtest/gtest.h>

#include "props/checkers.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp::proto::weak {
namespace {

WeakConfig base_config(TmKind tm, int n, std::uint64_t seed) {
  WeakConfig cfg;
  cfg.seed = seed;
  cfg.spec = DealSpec::uniform(/*deal_id=*/3, n, /*base=*/500, /*commission=*/2);
  cfg.tm = tm;
  cfg.env.synchrony = SynchronyKind::kPartiallySynchronous;
  cfg.env.gst = TimePoint::origin() + Duration::seconds(2);
  cfg.env.delta_max = Duration::millis(100);
  cfg.env.pre_gst_typical = Duration::millis(500);
  cfg.env.actual_rho = 1e-3;
  cfg.env.clock_offset_max = Duration::millis(20);
  cfg.patience = Duration::seconds(60);
  return cfg;
}

class WeakProtocolTmTest : public ::testing::TestWithParam<TmKind> {};

TEST_P(WeakProtocolTmTest, HappyPathCommits) {
  const auto record = run_weak(base_config(GetParam(), 3, 21));
  EXPECT_TRUE(record.stats.drained) << record.summary();
  EXPECT_TRUE(record.bob_paid()) << record.summary();
  EXPECT_TRUE(record.alice().received_commit_cert);
  const auto report = props::check_definition2(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str() << record.summary();
}

TEST_P(WeakProtocolTmTest, ImpatientCustomerAborts) {
  auto cfg = base_config(GetParam(), 2, 22);
  // Chloe_1 loses patience immediately.
  cfg.byzantine.push_back(
      WeakByzAssignment::customer(1, WeakByz::kEagerAbort));
  const auto record = run_weak(cfg);
  EXPECT_TRUE(record.stats.drained) << record.summary();
  const auto report = props::check_definition2(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str() << record.summary();
  // Whatever the race's outcome, nobody (abiding) lost money and CC held.
  // With an abort petition in flight at time ~0, the decision is abort
  // unless the full escrow set somehow raced it (possible only for tiny n
  // and lucky delays; with an immediate petition it should abort).
  EXPECT_FALSE(record.bob_paid()) << record.summary();
  EXPECT_EQ(record.alice().net_units(Currency::generic()), 0);
}

TEST_P(WeakProtocolTmTest, CrashedCustomerLeadsToAbortAndSafety) {
  auto cfg = base_config(GetParam(), 3, 23);
  cfg.patience = Duration::seconds(20);
  cfg.byzantine.push_back(WeakByzAssignment::customer(1, WeakByz::kCrash));
  const auto record = run_weak(cfg);
  EXPECT_TRUE(record.stats.drained) << record.summary();
  EXPECT_FALSE(record.bob_paid());
  const auto report = props::check_definition2(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str() << record.summary();
  // All abiding customers terminated (T) despite the crash.
  for (const auto& p : record.participants) {
    if (p.abiding && !p.is_escrow) {
      EXPECT_TRUE(p.terminated) << p.role;
    }
  }
}

TEST_P(WeakProtocolTmTest, CertificateConsistencyUnderRace) {
  // Bob + all deposits race an eager abort from Alice: whatever wins, both
  // certificates never coexist.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = base_config(GetParam(), 2, seed);
    cfg.patience_overrides.push_back({0, Duration::millis(50)});
    const auto record = run_weak(cfg);
    const auto cc = props::check_certificate_consistency(record);
    EXPECT_TRUE(cc.holds) << "seed=" << seed << "\n" << record.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTmKinds, WeakProtocolTmTest,
                         ::testing::Values(TmKind::kTrustedParty,
                                           TmKind::kSmartContract,
                                           TmKind::kNotaryCommittee),
                         [](const auto& info) {
                           switch (info.param) {
                             case TmKind::kTrustedParty: return "TrustedParty";
                             case TmKind::kSmartContract: return "SmartContract";
                             case TmKind::kNotaryCommittee: return "NotaryCommittee";
                           }
                           return "Unknown";
                         });

TEST(WeakProtocol, NotaryCommitteeToleratesByzantineMinority) {
  auto cfg = base_config(TmKind::kNotaryCommittee, 2, 31);
  cfg.notary_count = 7;
  cfg.byzantine_notaries = 2;  // f = 2 for m = 7
  cfg.notary_byz = consensus::NotaryBehaviour::kSilent;
  const auto record = run_weak(cfg);
  EXPECT_TRUE(record.bob_paid()) << record.summary();
  const auto report = props::check_definition2(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str() << record.summary();
}

TEST(WeakProtocol, NotaryCommitteeSafeWithEquivocators) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = base_config(TmKind::kNotaryCommittee, 2, 100 + seed);
    cfg.notary_count = 4;
    cfg.byzantine_notaries = 1;
    cfg.notary_byz = consensus::NotaryBehaviour::kEquivocator;
    // Make a commit/abort race: one mildly impatient customer.
    cfg.patience_overrides.push_back({0, Duration::millis(200)});
    const auto record = run_weak(cfg);
    const auto cc = props::check_certificate_consistency(record);
    EXPECT_TRUE(cc.holds) << "seed=" << seed << record.summary();
    const auto es = props::check_escrow_security(record);
    EXPECT_TRUE(es.holds) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace xcp::proto::weak
