// Cross-module integration tests: large chains, cross-currency deals,
// randomized environment sweeps with full Definition-1/2 property checks,
// and determinism across the whole stack.

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp {
namespace {

TEST(Integration, LongChainTimeBounded) {
  auto cfg = exp::thm1_config(16, 3);
  const auto record = proto::run_time_bounded(cfg);
  EXPECT_TRUE(record.bob_paid());
  const auto report = props::check_definition1(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str();
  // 16 escrows => money flows through 17 customers; check commissions.
  for (int i = 1; i <= 15; ++i) {
    EXPECT_EQ(record.customer(i).net_units(Currency::generic()), 10) << i;
  }
}

TEST(Integration, CrossCurrencyPayment) {
  proto::TimeBoundedConfig cfg = exp::thm1_config(3, 9);
  cfg.spec = proto::DealSpec::explicit_hops(
      2, {Amount(120, Currency::usd()), Amount(100, Currency::eur()),
          Amount(2, Currency::btc())});
  const auto record = proto::run_time_bounded(cfg);
  EXPECT_TRUE(record.stats.drained);
  const auto report = props::check_definition1(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str() << record.summary();
  EXPECT_EQ(record.bob().net_units(Currency::btc()), 2);
  EXPECT_EQ(record.alice().net_units(Currency::usd()), -120);
  // chloe_1: -100 EUR +120 USD; chloe_2: -2 BTC +100 EUR.
  EXPECT_EQ(record.customer(1).net_units(Currency::usd()), 120);
  EXPECT_EQ(record.customer(1).net_units(Currency::eur()), -100);
  EXPECT_EQ(record.customer(2).net_units(Currency::eur()), 100);
  EXPECT_EQ(record.customer(2).net_units(Currency::btc()), -2);
}

TEST(Integration, RandomizedEnvironmentSweepThm1) {
  // 40 random environments within the assumed bounds; Definition 1 must
  // hold in every one (this is the falsification harness for Thm 1).
  const auto one = [](std::uint64_t seed) {
    Rng rng(seed);
    proto::TimeBoundedConfig cfg = exp::thm1_config(
        static_cast<int>(rng.next_int(1, 8)), seed);
    cfg.env.delta_min = Duration::millis(rng.next_int(1, 50));
    cfg.env.actual_rho = rng.next_double(0.0, cfg.assumed.rho);
    cfg.env.clock_offset_max = Duration::millis(rng.next_int(0, 100));
    const auto record = proto::run_time_bounded(cfg);
    const auto report =
        props::check_definition1(record, props::CheckOptions{});
    return report.all_hold() && record.bob_paid();
  };
  const auto results = exp::parallel_sweep<bool>(1, 40, one);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i]) << "seed " << (i + 1);
  }
}

TEST(Integration, RandomizedSweepThm3AllTmKinds) {
  using proto::weak::TmKind;
  for (TmKind tm : {TmKind::kTrustedParty, TmKind::kSmartContract,
                    TmKind::kNotaryCommittee}) {
    const auto one = [tm](std::uint64_t seed) {
      Rng rng(seed * 977);
      auto cfg = exp::thm3_config(tm, static_cast<int>(rng.next_int(1, 5)),
                                  seed);
      cfg.env.gst = TimePoint::origin() +
                    Duration::millis(rng.next_int(100, 5000));
      const auto record = proto::weak::run_weak(cfg);
      const auto report =
          props::check_definition2(record, props::CheckOptions{});
      return report.all_hold() && record.bob_paid();
    };
    const auto results = exp::parallel_sweep<bool>(1, 15, one);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i]) << "tm=" << static_cast<int>(tm) << " seed "
                              << (i + 1);
    }
  }
}

TEST(Integration, WeakProtocolDeterministic) {
  auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 3, 321);
  const auto a = proto::weak::run_weak(cfg);
  const auto b = proto::weak::run_weak(cfg);
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    EXPECT_EQ(a.trace.events()[i].str(), b.trace.events()[i].str()) << i;
  }
}

TEST(Integration, MessageComplexityLinearInChainLength) {
  // Fig. 1 structure: the happy path costs Theta(n) messages.
  std::vector<std::uint64_t> counts;
  for (int n : {2, 4, 8}) {
    const auto record = proto::run_time_bounded(exp::thm1_config(n, 4));
    EXPECT_TRUE(record.bob_paid());
    counts.push_back(record.stats.messages_sent);
  }
  // Doubling n should roughly double messages (within +-50%).
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[2], counts[1]);
  const double ratio = static_cast<double>(counts[2]) / counts[1];
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
}

TEST(Integration, ImpatientAliceWeakAbortRefundsEveryone) {
  auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 4, 11);
  cfg.patience_overrides.push_back({0, Duration::millis(1)});
  const auto record = proto::weak::run_weak(cfg);
  EXPECT_FALSE(record.bob_paid());
  for (int i = 0; i <= 4; ++i) {
    EXPECT_EQ(record.customer(i).net_units(Currency::generic()), 0) << i;
  }
  const auto report = props::check_definition2(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str();
}

}  // namespace
}  // namespace xcp
