// Tests for the zero-allocation event core: the indexed-heap EventQueue
// (randomized stress against a naive reference model), the SBO callable,
// interned message kinds, and a whole-protocol determinism regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exp/scenario.hpp"
#include "net/msg_kind.hpp"
#include "proto/weak/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/simulator.hpp"
#include "support/hash.hpp"
#include "support/inline_callable.hpp"
#include "support/rng.hpp"

namespace xcp {
namespace {

// ----------------------------------------------------------- InlineCallable

TEST(InlineCallable, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  InlineCallable<64> f([p] { ++*p; });
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallable, LargeCapturesSpillToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 64-byte buffer
  big[7] = 42;
  std::uint64_t seen = 0;
  InlineCallable<64> f([big, &seen] { seen = big[7]; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineCallable, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineCallable<64> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  InlineCallable<64> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  EXPECT_EQ(counter.use_count(), 2);   // capture moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
  b.reset();
  EXPECT_EQ(counter.use_count(), 1);  // captures released on reset
}

TEST(InlineCallable, DestructorReleasesCaptures) {
  auto counter = std::make_shared<int>(0);
  {
    InlineCallable<64> f([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// ------------------------------------------------------------------ MsgKind

TEST(MsgKind, InterningIsStable) {
  const net::MsgKind a = net::kind("stress-kind-a");
  const net::MsgKind b = net::kind("stress-kind-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, net::kind("stress-kind-a"));
  EXPECT_EQ(a.value(), net::kind("stress-kind-a").value());
  EXPECT_EQ(a.name(), "stress-kind-a");
  EXPECT_EQ(net::MsgKind::from_wire(b.value()), b);
}

TEST(MsgKind, ImplicitConstructionMatchesInterner) {
  const net::MsgKind k = "stress-kind-c";
  EXPECT_EQ(k, net::kind("stress-kind-c"));
  EXPECT_FALSE(net::MsgKind().valid());
  EXPECT_TRUE(k.valid());
}

TEST(MsgKind, WellKnownKindsAreDistinct) {
  const std::vector<net::MsgKind> all = {
      net::kinds::g,         net::kinds::p,         net::kinds::money,
      net::kinds::chi,       net::kinds::tx,        net::kinds::chain_event,
      net::kinds::tm_chi,    net::kinds::tm_report, net::kinds::tm_cert,
      net::kinds::deposit,   net::kinds::funded,    net::kinds::claim,
      net::kinds::proof,     net::kinds::bft_proposal,
      net::kinds::bft_vote,  net::kinds::bft_newround,
      net::kinds::bft_decision};
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
}

// -------------------------------------------------- EventQueue vs reference

/// Naive reference model: a vector of live entries, popped by (at, seq).
struct RefModel {
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    int payload;
  };
  std::vector<Entry> live;
  std::uint64_t next_seq = 1;

  std::uint64_t push(TimePoint at, int payload) {
    live.push_back(Entry{at, next_seq, payload});
    return next_seq++;
  }
  bool cancel(std::uint64_t seq) {
    const auto it = std::find_if(live.begin(), live.end(),
                                 [&](const Entry& e) { return e.seq == seq; });
    if (it == live.end()) return false;
    live.erase(it);
    return true;
  }
  Entry pop() {
    auto best = live.begin();
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->at < best->at || (it->at == best->at && it->seq < best->seq)) {
        best = it;
      }
    }
    const Entry e = *best;
    live.erase(best);
    return e;
  }
};

TEST(EventQueueStress, MatchesReferenceModel) {
  sim::EventQueue q;
  RefModel ref;
  Rng rng(0xfeedbeef);

  // Maps the reference's seq to the queue's EventId, including stale pairs
  // (fired or cancelled) so cancel is also exercised on dead handles.
  std::vector<std::pair<std::uint64_t, sim::EventId>> handles;
  std::vector<int> popped_payloads;
  int live_payload_next = 0;

  for (int step = 0; step < 20'000; ++step) {
    const int op = rng.next_int(0, 99);
    if (op < 50) {  // push
      const TimePoint at = TimePoint::micros(rng.next_int(0, 5'000));
      const int payload = live_payload_next++;
      int observed = -1;
      const sim::EventId id =
          q.push(at, [payload, &popped_payloads] {
            popped_payloads.push_back(payload);
          });
      (void)observed;
      const std::uint64_t seq = ref.push(at, payload);
      handles.emplace_back(seq, id);
    } else if (op < 75) {  // cancel a random handle, live or stale
      if (handles.empty()) continue;
      const auto& [seq, id] =
          handles[static_cast<std::size_t>(
              rng.next_int(0, static_cast<int>(handles.size()) - 1))];
      EXPECT_EQ(q.cancel(id), ref.cancel(seq));
    } else {  // pop
      ASSERT_EQ(q.empty(), ref.live.empty());
      if (ref.live.empty()) continue;
      auto ev = q.pop();
      const RefModel::Entry expect = ref.pop();
      EXPECT_EQ(ev.at, expect.at);
      popped_payloads.clear();
      ev.fn();
      ASSERT_EQ(popped_payloads.size(), 1u);
      EXPECT_EQ(popped_payloads[0], expect.payload);
    }
    ASSERT_EQ(q.live_size(), ref.live.size());
  }

  // Drain; order must match exactly.
  while (!ref.live.empty()) {
    ASSERT_FALSE(q.empty());
    auto ev = q.pop();
    const RefModel::Entry expect = ref.pop();
    EXPECT_EQ(ev.at, expect.at);
    popped_payloads.clear();
    ev.fn();
    ASSERT_EQ(popped_payloads.size(), 1u);
    EXPECT_EQ(popped_payloads[0], expect.payload);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsANoopAndNeverWrapsLiveSize) {
  // Regression: the lazy-cancel design let cancel() of an already-fired id
  // grow the tombstone set, making live_size() = heap - cancelled wrap.
  sim::EventQueue q;
  const sim::EventId a = q.push(TimePoint::micros(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(a));          // already fired: no-op
  EXPECT_FALSE(q.cancel(a));          // idempotent
  EXPECT_FALSE(q.cancel(0xdeadbeef)); // unknown id: no-op
  EXPECT_EQ(q.live_size(), 0u);
  q.push(TimePoint::micros(2), [] {});
  EXPECT_EQ(q.live_size(), 1u);       // no underflow from earlier cancels
}

TEST(EventQueue, CancelledEventSlotIsNotResurrectable) {
  sim::EventQueue q;
  const sim::EventId a = q.push(TimePoint::micros(1), [] {});
  EXPECT_TRUE(q.cancel(a));
  // The slot is recycled by the next push; the stale handle must not
  // cancel the new event.
  const sim::EventId b = q.push(TimePoint::micros(2), [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.live_size(), 1u);
}

TEST(EventQueueStress, WheelMatchesReferenceUnderSimulatorWorkload) {
  // The timer-wheel stress mirror of MatchesReferenceModel, shaped like a
  // real simulator run: virtual time only moves forward, and push deltas
  // cluster around a handful of protocol-like values (microseconds up to
  // tens of virtual minutes), spanning every wheel level plus the
  // beyond-horizon heap fallback. Both the wheel-fronted queue and a
  // heap-only queue run the same op sequence; each must match the naive
  // reference model exactly, which also proves the two policies produce
  // identical pop sequences.
  for (const bool use_wheel : {true, false}) {
    sim::EventQueue q(use_wheel);
    RefModel ref;
    Rng rng(0xabad1dea);

    const std::int64_t deltas[] = {
        1,          17,          1'000,        10'000,      100'000,
        1'000'000,  10'000'000,  600'000'000,  3'600'000'000};
    std::int64_t now = 0;
    std::vector<std::pair<std::uint64_t, sim::EventId>> handles;
    std::vector<int> popped;
    int payload_next = 0;

    for (int step = 0; step < 30'000; ++step) {
      const int op = rng.next_int(0, 99);
      if (op < 45) {  // push at now + clustered delta (+ jitter)
        const std::int64_t base =
            deltas[static_cast<std::size_t>(rng.next_int(0, 8))];
        const TimePoint at =
            TimePoint::micros(now + base + rng.next_int(0, 64));
        const int payload = payload_next++;
        const sim::EventId id = q.push(
            at, [payload, &popped] { popped.push_back(payload); });
        handles.emplace_back(ref.push(at, payload), id);
      } else if (op < 75) {  // cancel a random handle, live or stale
        if (handles.empty()) continue;
        const auto& [seq, id] = handles[static_cast<std::size_t>(
            rng.next_int(0, static_cast<int>(handles.size()) - 1))];
        ASSERT_EQ(q.cancel(id), ref.cancel(seq));
      } else {  // pop; virtual time advances monotonically
        ASSERT_EQ(q.empty(), ref.live.empty());
        if (ref.live.empty()) continue;
        auto ev = q.pop();
        const RefModel::Entry expect = ref.pop();
        ASSERT_EQ(ev.at, expect.at);
        ASSERT_GE(ev.at.count(), now);
        now = ev.at.count();
        popped.clear();
        ev.fn();
        ASSERT_EQ(popped.size(), 1u);
        ASSERT_EQ(popped[0], expect.payload);
      }
      ASSERT_EQ(q.live_size(), ref.live.size());
    }

    if (use_wheel) {
      // The workload must actually exercise the wheel, not just the heap
      // fallback; otherwise this test proves nothing about the wheel.
      EXPECT_GT(q.wheel_size(), 0u);
    } else {
      EXPECT_EQ(q.wheel_size(), 0u);
    }

    while (!ref.live.empty()) {
      ASSERT_FALSE(q.empty());
      auto ev = q.pop();
      const RefModel::Entry expect = ref.pop();
      ASSERT_EQ(ev.at, expect.at);
      popped.clear();
      ev.fn();
      ASSERT_EQ(popped.size(), 1u);
      ASSERT_EQ(popped[0], expect.payload);
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueue, WheelParksFutureTimeoutsUntilDue) {
  // A protocol-like timeout (far future) sits in the wheel — O(1) to
  // cancel — and only migrates to the heap when virtual time approaches
  // its slot.
  sim::EventQueue q;
  q.push(TimePoint::micros(10), [] {});  // near anchor: heap, below kMinLevel
  const sim::EventId timeout =
      q.push(TimePoint::micros(5'000'000), [] {});
  EXPECT_EQ(q.wheel_size(), 1u);  // only the far timeout is parked
  EXPECT_TRUE(q.cancel(timeout));
  EXPECT_EQ(q.wheel_size(), 0u);
  EXPECT_EQ(q.live_size(), 1u);

  // Re-armed and left to fire: it drains to the heap and pops in order.
  q.push(TimePoint::micros(5'000'000), [] {});
  EXPECT_EQ(q.pop().at, TimePoint::micros(10));
  EXPECT_EQ(q.pop().at, TimePoint::micros(5'000'000));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, WheelReArmChurnKeepsStorageBounded) {
  // The protocol re-arm pattern at wheel scale: a timeout pushed at
  // now + Delta, cancelled, pushed again with a fresh delta — 100k times
  // across several delta magnitudes. Slot storage must stay at the
  // high-water mark of live events, exactly like the heap-only churn test.
  sim::EventQueue q;
  std::int64_t now = 0;
  sim::EventId last = q.push(TimePoint::micros(1'000), [] {});
  for (int i = 1; i <= 100'000; ++i) {
    const std::int64_t delta = (i % 3 == 0)   ? 1'000'000
                               : (i % 3 == 1) ? 5'000'000
                                              : 120'000'000;
    now += 7;
    const sim::EventId next = q.push(TimePoint::micros(now + delta), [] {});
    EXPECT_TRUE(q.cancel(last));
    last = next;
  }
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_LE(q.slab_size(), 2u);
}

TEST(TimerWheel, ThrowingConsumerRestoresDetachedBucket) {
  // Regression: a consumer that threw between detach_earliest_if_due and
  // release_detached (an event callback exploding mid-drain) left the
  // bucket on loan forever — the next detach tripped
  // XCP_REQUIRE(detached_ == kNoBucket, "previous detach not released") and
  // bricked the queue. DetachScope's unwind path must return the loan with
  // every entry intact.
  sim::TimerWheel w;
  const TimePoint at = TimePoint::micros(std::int64_t{2} << 18);  // level 3
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_NE(w.try_insert(at, i, i), sim::TimerWheel::kNone);
  }
  ASSERT_EQ(w.size(), 3u);

  const auto drain_throwing = [&] {
    const sim::TimerWheel::DetachedView due =
        w.detach_earliest_if_due(at.count());
    ASSERT_EQ(due.size, 3u);
    sim::TimerWheel::DetachScope scope(w);
    for (std::size_t i = 0; i < due.size; ++i) {
      if (i == 1) throw std::runtime_error("callback exploded mid-drain");
    }
    scope.release(3);  // never reached
  };
  EXPECT_THROW(drain_throwing(), std::runtime_error);

  // The loan was returned and nothing was lost: the wheel still holds all
  // three entries and a fresh detach succeeds (this is the call that used
  // to throw "previous detach not released").
  EXPECT_EQ(w.size(), 3u);
  const sim::TimerWheel::DetachedView due =
      w.detach_earliest_if_due(at.count());
  ASSERT_EQ(due.size, 3u);
  std::size_t live = 0;
  for (std::size_t i = 0; i < due.size; ++i) {
    if (due.data[i].idx != sim::TimerWheel::kNone) ++live;
  }
  EXPECT_EQ(live, 3u);
  w.release_detached(live);
  EXPECT_TRUE(w.empty());
}

TEST(EventQueue, ThrowingCallbackLeavesQueueDrainable) {
  // An event callable that throws unwinds through the owner's run loop;
  // the queue (wheel included) must stay fully usable afterwards.
  sim::EventQueue q;
  q.push(TimePoint::micros(10),
         [] { throw std::runtime_error("callback exploded"); });
  int fired = 0;
  q.push(TimePoint::micros(5'000'000), [&fired] { ++fired; });  // wheel
  EXPECT_EQ(q.wheel_size(), 1u);

  auto ev = q.pop();
  EXPECT_THROW(ev.fn(), std::runtime_error);

  // The parked timeout still drains and fires in order.
  auto next = q.pop();
  EXPECT_EQ(next.at, TimePoint::micros(5'000'000));
  next.fn();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(TimerWheel, BucketCapRejectsOverflowAndRecyclesPositions) {
  // The packed locator reserves 22 bits for the in-bucket position:
  // position kMaxBucketEntries would alias the bucket bits, so try_insert
  // must return kNone at the cap (the owner's contract routes the entry to
  // its fallback heap — the same kNone path the horizon test drives
  // through a full EventQueue, which would need ~400MB of event slots to
  // reach this cap end-to-end).
  sim::TimerWheel w;
  const TimePoint at = TimePoint::micros(std::int64_t{2} << 18);  // level 3
  std::uint32_t first = sim::TimerWheel::kNone;
  for (std::uint32_t i = 0; i < sim::TimerWheel::kMaxBucketEntries; ++i) {
    const std::uint32_t loc = w.try_insert(at, i, i);
    ASSERT_NE(loc, sim::TimerWheel::kNone) << i;
    if (i == 0) first = loc;
  }
  EXPECT_EQ(w.size(), sim::TimerWheel::kMaxBucketEntries);

  // Bucket full: the next insert is rejected, loudly and gracefully.
  EXPECT_EQ(w.try_insert(at, 1u << 22, 1u << 22), sim::TimerWheel::kNone);

  // Erase frees a position; the free stack recycles it for the next
  // insert, so the bucket accepts exactly one more entry and is full
  // again.
  w.erase(first);
  EXPECT_NE(w.try_insert(at, 7, 7), sim::TimerWheel::kNone);
  EXPECT_EQ(w.try_insert(at, 8, 8), sim::TimerWheel::kNone);

  // The crowded bucket still drains coherently.
  const sim::TimerWheel::DetachedView due =
      w.detach_earliest_if_due(at.count());
  ASSERT_EQ(due.size, sim::TimerWheel::kMaxBucketEntries);
  std::size_t live = 0;
  for (std::size_t i = 0; i < due.size; ++i) {
    if (due.data[i].idx != sim::TimerWheel::kNone) ++live;
  }
  EXPECT_EQ(live, sim::TimerWheel::kMaxBucketEntries);
  w.release_detached(live);
  EXPECT_TRUE(w.empty());
}

TEST(EventQueue, WheelRejectionsFallBackToHeapWithCancelAndRearm) {
  // Both try_insert rejection reasons the queue can hit cheaply —
  // beyond-horizon expiry and at-or-before-cursor expiry — must route to
  // the heap, with cancel and re-arm resolving correctly through pos_'s
  // tag bit for wheel and heap residents alike.
  sim::EventQueue q;
  q.push(TimePoint::micros(100), [] {});  // anchor; rewinds cursor to 99

  // Beyond the ~19h horizon: heap, not wheel.
  const TimePoint far = TimePoint::micros(std::int64_t{1} << 40);
  sim::EventId beyond = q.push(far, [] {});
  EXPECT_EQ(q.wheel_size(), 0u);

  // Within the horizon: parked in the wheel.
  sim::EventId parked = q.push(TimePoint::micros(5'000'000), [] {});
  EXPECT_EQ(q.wheel_size(), 1u);

  // At or before the cursor (a past-due time next to the anchor): heap.
  q.push(TimePoint::micros(50), [] {});
  EXPECT_EQ(q.wheel_size(), 1u);
  EXPECT_EQ(q.live_size(), 4u);

  // Cancel resolves through both pos_ encodings (heap position vs tagged
  // wheel locator), and both events re-arm cleanly.
  EXPECT_TRUE(q.cancel(beyond));
  EXPECT_TRUE(q.cancel(parked));
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_EQ(q.wheel_size(), 0u);
  beyond = q.push(far, [] {});
  parked = q.push(TimePoint::micros(6'000'000), [] {});
  EXPECT_EQ(q.wheel_size(), 1u);

  // Pop order is the exact (at, seq) total order across heap and wheel.
  EXPECT_EQ(q.pop().at, TimePoint::micros(50));
  EXPECT_EQ(q.pop().at, TimePoint::micros(100));
  EXPECT_EQ(q.pop().at, TimePoint::micros(6'000'000));
  EXPECT_EQ(q.pop().at, far);
  EXPECT_TRUE(q.empty());

  // Stale handles for fired events are no-ops.
  EXPECT_FALSE(q.cancel(beyond));
  EXPECT_FALSE(q.cancel(parked));
}

TEST(EventQueue, TimerResetChurnDoesNotGrowStorage) {
  // The watchdog pattern: push the new deadline, cancel the old. Live size
  // stays at 1; the slab must stay at its high-water mark (2 slots) instead
  // of accumulating tombstones.
  sim::EventQueue q;
  sim::EventId last = q.push(TimePoint::micros(0), [] {});
  for (int i = 1; i <= 100'000; ++i) {
    const sim::EventId next = q.push(TimePoint::micros(i), [] {});
    EXPECT_TRUE(q.cancel(last));
    last = next;
  }
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_LE(q.slab_size(), 2u);
}

// ------------------------------------------------------------- determinism

std::uint64_t trace_hash(const props::TraceRecorder& trace) {
  HashWriter w;
  for (const auto& e : trace.events()) {
    w.write_u32(static_cast<std::uint32_t>(e.kind));
    w.write_i64(e.at.count());
    w.write_i64(e.local_at.count());
    w.write_u32(e.actor.value());
    w.write_u32(e.peer.value());
    w.write_str(e.label.name());
    w.write_u64(e.deal_id);
  }
  return w.digest();
}

TEST(Determinism, SameSeedSameTraceAcrossRuns) {
  // Same seed => identical event count and trace hash, end to end through
  // simulator, network, protocol and transaction manager.
  const auto run = [] {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 3, 1234);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    return proto::weak::run_weak(cfg);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.trace.events().size(), r2.trace.events().size());
  EXPECT_EQ(trace_hash(r1.trace), trace_hash(r2.trace));
  EXPECT_EQ(r1.stats.messages_sent, r2.stats.messages_sent);
  EXPECT_EQ(r1.stats.messages_delivered, r2.stats.messages_delivered);
}

TEST(Determinism, SimulatorEventCountsReproducible) {
  const auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Rng workload(seed + 1);
    std::uint64_t fired_hash = 0;
    for (int i = 0; i < 500; ++i) {
      const auto at = TimePoint::micros(workload.next_int(0, 10'000));
      const sim::EventId id = sim.schedule_at(at, [&fired_hash, i, &sim] {
        fired_hash = fired_hash * 1099511628211ull ^
                     static_cast<std::uint64_t>(i) ^
                     static_cast<std::uint64_t>(sim.now().count());
      });
      if (workload.next_int(0, 3) == 0) sim.cancel(id);
    }
    sim.run();
    return std::pair(sim.events_executed(), fired_hash);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7).second, run(8).second);
}

}  // namespace
}  // namespace xcp
