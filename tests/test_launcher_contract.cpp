// Conformance battery for the WorkerLauncher seam: every launcher the
// dispatcher can sit on — the plain local process launcher, the
// deterministic FakeRemoteLauncher harness, and the sh-exec RemoteLauncher
// (the single-box instantiation of the command-template transport) — must
// honor the same contract: non-blocking stream fds, non-blocking try_reap
// while the worker runs, hard/soft termination that leaves the handle
// reapable, preserved exit codes, and tolerance of the EOF-before-reapable
// race the dispatcher's poll loop leans on.

#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/host_pool.hpp"
#include "exp/remote.hpp"

namespace xcp::exp {
namespace {

using Millis = std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

/// One launcher-under-test plus whatever it needs kept alive (pools).
struct Fixture {
  virtual ~Fixture() = default;
  virtual WorkerLauncher& launcher() = 0;
};

struct LocalFixture : Fixture {
  LocalProcessLauncher l;
  WorkerLauncher& launcher() override { return l; }
};

struct FakeRemoteFixture : Fixture {
  HostPool pool;
  FakeRemoteLauncher l{pool, /*worker_path=*/""};
  FakeRemoteFixture() {
    pool.add_host("contract-a");
    pool.add_host("contract-b");
  }
  WorkerLauncher& launcher() override { return l; }
};

struct ShExecFixture : Fixture {
  HostPool pool;
  RemoteLauncher l{pool, RemoteOptions::sh_template()};
  ShExecFixture() { pool.add_host("contract-box"); }
  WorkerLauncher& launcher() override { return l; }
};

struct Param {
  const char* name;
  std::function<std::unique_ptr<Fixture>()> make;
};

class LauncherContract : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<Fixture> fx_ = GetParam().make();
  WorkerLauncher& launcher() { return fx_->launcher(); }

  static void close_handle(const WorkerHandle& w) {
    if (w.stdout_fd >= 0) ::close(w.stdout_fd);
    if (w.stderr_fd >= 0) ::close(w.stderr_fd);
  }

  /// Reads one stream to EOF through the non-blocking fd, the way the
  /// dispatcher does (EAGAIN waits, EINTR retries).
  static std::string slurp(int fd, Millis budget = Millis(5'000)) {
    std::string out;
    const Clock::time_point deadline = Clock::now() + budget;
    char buf[4096];
    while (Clock::now() < deadline) {
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got > 0) {
        out.append(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) return out;  // EOF
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        std::this_thread::sleep_for(Millis(2));
        continue;
      }
      return out;  // read error == end-of-stream, per the dispatcher
    }
    ADD_FAILURE() << "stream did not reach EOF within the budget";
    return out;
  }

  /// try_reap until it lands — EOF on the pipes may precede the process
  /// becoming waitable, and the contract says callers spin, not block.
  static bool reap_within(WorkerLauncher& l, const WorkerHandle& w,
                          int& raw_status, Millis budget = Millis(5'000)) {
    const Clock::time_point deadline = Clock::now() + budget;
    while (Clock::now() < deadline) {
      if (l.try_reap(w, raw_status)) return true;
      std::this_thread::sleep_for(Millis(2));
    }
    return false;
  }
};

TEST_P(LauncherContract, LaunchRoundTripsStdoutAndExitZero) {
  WorkerHandle w =
      launcher().launch({"/bin/sh", "-c", "printf contract-ok"});
  EXPECT_GT(w.pid, 0);
  ASSERT_GE(w.stdout_fd, 0);
  ASSERT_GE(w.stderr_fd, 0);
  EXPECT_EQ(slurp(w.stdout_fd), "contract-ok");
  int raw = 0;
  ASSERT_TRUE(reap_within(launcher(), w, raw));
  EXPECT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 0);
  close_handle(w);
}

TEST_P(LauncherContract, StreamFdsAreNonBlocking) {
  WorkerHandle w = launcher().launch({"/bin/sh", "-c", "sleep 30"});
  for (const int fd : {w.stdout_fd, w.stderr_fd}) {
    const int flags = ::fcntl(fd, F_GETFL);
    ASSERT_NE(flags, -1);
    EXPECT_NE(flags & O_NONBLOCK, 0)
        << "the dispatcher never issues a read that can block";
  }
  // And reads on a silent live worker return EAGAIN, they don't hang.
  char c;
  const ssize_t got = ::read(w.stdout_fd, &c, 1);
  EXPECT_EQ(got, -1);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
  launcher().terminate(w);
  launcher().reap(w);
  close_handle(w);
}

TEST_P(LauncherContract, TryReapIsNonBlockingWhileRunning) {
  WorkerHandle w = launcher().launch({"/bin/sh", "-c", "sleep 30"});
  const Clock::time_point t0 = Clock::now();
  int raw = 0;
  EXPECT_FALSE(launcher().try_reap(w, raw));
  EXPECT_LT(Clock::now() - t0, Millis(500)) << "try_reap must not block";
  launcher().terminate(w);
  launcher().reap(w);
  close_handle(w);
}

TEST_P(LauncherContract, TerminateKillsAndLeavesTheHandleReapable) {
  WorkerHandle w = launcher().launch({"/bin/sh", "-c", "sleep 30"});
  launcher().terminate(w);
  launcher().terminate(w);  // idempotent
  const int raw = launcher().reap(w);
  EXPECT_TRUE(WIFSIGNALED(raw));
  EXPECT_EQ(WTERMSIG(raw), SIGKILL);
  close_handle(w);
}

TEST_P(LauncherContract, TerminateSoftDeliversSigterm) {
  WorkerHandle w = launcher().launch({"/bin/sh", "-c", "sleep 30"});
  launcher().terminate_soft(w);
  int raw = 0;
  ASSERT_TRUE(reap_within(launcher(), w, raw));
  EXPECT_TRUE(WIFSIGNALED(raw));
  EXPECT_EQ(WTERMSIG(raw), SIGTERM);
  close_handle(w);
}

TEST_P(LauncherContract, ExitCodesSurviveTheTransport) {
  WorkerHandle w = launcher().launch({"/bin/sh", "-c", "exit 7"});
  slurp(w.stdout_fd);
  int raw = 0;
  ASSERT_TRUE(reap_within(launcher(), w, raw));
  EXPECT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 7);
  close_handle(w);
}

TEST_P(LauncherContract, StderrTravelsItsOwnStream) {
  WorkerHandle w = launcher().launch(
      {"/bin/sh", "-c", "printf out; printf err >&2"});
  EXPECT_EQ(slurp(w.stdout_fd), "out");
  EXPECT_EQ(slurp(w.stderr_fd), "err");
  int raw = 0;
  ASSERT_TRUE(reap_within(launcher(), w, raw));
  close_handle(w);
}

TEST_P(LauncherContract, EofCanPrecedeReapabilityWithoutDeadlock) {
  // A worker that closes its stdio then lingers: the streams hit EOF while
  // the process is alive. try_reap stays false (and keeps not blocking)
  // until the exit really lands.
  WorkerHandle w = launcher().launch(
      {"/bin/sh", "-c", "exec >/dev/null 2>&1; sleep 0.3"});
  EXPECT_EQ(slurp(w.stdout_fd), "");  // EOF, immediately
  int raw = 0;
  ASSERT_TRUE(reap_within(launcher(), w, raw));
  EXPECT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 0);
  close_handle(w);
}

INSTANTIATE_TEST_SUITE_P(
    Seam, LauncherContract,
    ::testing::Values(
        Param{"local", []() -> std::unique_ptr<Fixture> {
                return std::make_unique<LocalFixture>();
              }},
        Param{"fake_remote", []() -> std::unique_ptr<Fixture> {
                return std::make_unique<FakeRemoteFixture>();
              }},
        Param{"sh_exec_remote", []() -> std::unique_ptr<Fixture> {
                return std::make_unique<ShExecFixture>();
              }}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace xcp::exp
