// Unit tests for the support layer: time, amounts, RNG, hashing, tables.

#include <gtest/gtest.h>

#include <set>

#include "support/amount.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/table.hpp"
#include "support/time.hpp"

namespace xcp {
namespace {

// ----------------------------------------------------------------- Duration

TEST(Duration, ConstructionAndConversion) {
  EXPECT_EQ(Duration::seconds(2).count(), 2'000'000);
  EXPECT_EQ(Duration::millis(3).count(), 3'000);
  EXPECT_EQ(Duration::micros(7).count(), 7);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).to_millis(), 2.5);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(100);
  const Duration b = Duration::millis(40);
  EXPECT_EQ((a + b).count(), 140'000);
  EXPECT_EQ((a - b).count(), 60'000);
  EXPECT_EQ((a * 3).count(), 300'000);
  EXPECT_EQ((3 * a).count(), 300'000);
  EXPECT_EQ((a / 2).count(), 50'000);
  EXPECT_EQ((-b).count(), -40'000);
  EXPECT_LT(b, a);
}

TEST(Duration, ScaledUpRoundsUp) {
  // Deadline inflation must never round a bound downwards.
  const Duration d = Duration::micros(1000);
  EXPECT_EQ(d.scaled_up(1.0).count(), 1000);
  EXPECT_EQ(d.scaled_up(1.001).count(), 1001);
  EXPECT_EQ(d.scaled_up(1.0001).count(), 1001);  // ceil(1000.1)
  EXPECT_EQ(d.scaled_down(1.0001).count(), 1000);
}

TEST(Duration, StrPicksNaturalUnit) {
  EXPECT_EQ(Duration::seconds(3).str(), "3s");
  EXPECT_EQ(Duration::millis(30).str(), "30ms");
  EXPECT_EQ(Duration::micros(5).str(), "5us");
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::origin() + Duration::seconds(5);
  EXPECT_EQ(t.count(), 5'000'000);
  EXPECT_EQ((t - Duration::seconds(2)).count(), 3'000'000);
  EXPECT_EQ((t - TimePoint::origin()).count(), 5'000'000);
  EXPECT_LT(TimePoint::origin(), t);
}

// ------------------------------------------------------------------- Amount

TEST(Amount, SameCurrencyArithmetic) {
  const Amount a(100, Currency::usd());
  const Amount b(40, Currency::usd());
  EXPECT_EQ((a + b).units(), 140);
  EXPECT_EQ((a - b).units(), 60);
  EXPECT_TRUE(b.less_than(a));
  EXPECT_EQ((-a).units(), -100);
}

TEST(Amount, CrossCurrencyArithmeticThrows) {
  const Amount usd(100, Currency::usd());
  const Amount eur(100, Currency::eur());
  EXPECT_THROW(usd + eur, AmountError);
  EXPECT_THROW(usd - eur, AmountError);
  EXPECT_THROW(usd.less_than(eur), AmountError);
  EXPECT_FALSE(usd == eur);  // equality is defined and false
}

TEST(Amount, OverflowDetected) {
  const Amount big(std::numeric_limits<std::int64_t>::max(), Currency::usd());
  const Amount one(1, Currency::usd());
  EXPECT_THROW(big + one, AmountError);
  const Amount small(std::numeric_limits<std::int64_t>::min(), Currency::usd());
  EXPECT_THROW(small - one, AmountError);
}

TEST(Amount, Formatting) {
  EXPECT_EQ(Amount(5, Currency::btc()).str(), "5 BTC");
  EXPECT_EQ(Currency::usd().code(), "USD");
  EXPECT_EQ(Currency(77).code(), "CUR77");
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 1000 draws
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit = lo_hit || v == -3;
    hi_hit = hi_hit || v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) heads += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  (void)parent2.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.next_u64() == parent.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDurationWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Duration d = rng.next_duration(Duration::millis(1), Duration::millis(5));
    EXPECT_GE(d, Duration::millis(1));
    EXPECT_LE(d, Duration::millis(5));
  }
}

// --------------------------------------------------------------------- Hash

TEST(Hash, Fnv1aKnownProperties) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("xcp"), fnv1a64("xcp"));
}

TEST(Hash, HashWriterOrderSensitive) {
  HashWriter a;
  a.write_u64(1);
  a.write_u64(2);
  HashWriter b;
  b.write_u64(2);
  b.write_u64(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, HashWriterStringFraming) {
  // "ab" + "c" must differ from "a" + "bc" (length prefixes prevent
  // concatenation ambiguity).
  HashWriter a;
  a.write_str("ab");
  a.write_str("c");
  HashWriter b;
  b.write_str("a");
  b.write_str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

// ------------------------------------------------------------------- Status

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status e = Status::error("boom");
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.message(), "boom");
  EXPECT_THROW(e.expect("ctx"), std::runtime_error);
  EXPECT_NO_THROW(Status::ok().expect("ctx"));
}

TEST(Status, RequireMacroThrowsWithMessage) {
  EXPECT_THROW(
      [] { XCP_REQUIRE(1 == 2, "math broke"); }(), std::logic_error);
}

// -------------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"q\"uote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Table, ArityMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(static_cast<std::int64_t>(-5)), "-5");
  EXPECT_EQ(Table::fmt(true), "yes");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace xcp
