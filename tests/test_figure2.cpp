// Unit tests of the Figure-2 automaton builders and their validation
// callbacks: structural conformance to the figure, rejection of ill-formed
// promises/money/certificates, and cross-deal replay resistance.

#include <gtest/gtest.h>

#include "anta/interpreter.hpp"
#include "exp/scenario.hpp"
#include "net/delay_model.hpp"
#include "proto/bodies.hpp"
#include "proto/figure2.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

namespace xcp::proto {
namespace {

Fig2ContextPtr make_ctx(int n, ledger::Ledger& ledger,
                        ledger::EscrowRegistry& escrows,
                        crypto::KeyRegistry& keys) {
  auto ctx = std::make_shared<Fig2Context>();
  ctx->spec = DealSpec::uniform(/*deal_id=*/4, n, 100, 2);
  for (int i = 0; i <= n; ++i) {
    ctx->parts.customers.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < n; ++i) {
    ctx->parts.escrows.push_back(
        sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i)));
  }
  ctx->schedule =
      TimelockSchedule::drift_compensated(n, exp::default_timing());
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->bob_signer = keys.signer_for(ctx->parts.bob());
  return ctx;
}

TEST(Figure2Builders, EscrowShapeMatchesFigure) {
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(1);
  const auto ctx = make_ctx(2, ledger, escrows, keys);
  const auto a = build_escrow_automaton(ctx, 0);
  // 9 states: send_G, await_$, send_P, await_chi, fwd_chi, pay_down, refund,
  // done_paid, done_refunded.
  EXPECT_EQ(a->state_count(), 9u);
  EXPECT_EQ(a->var_count(), 1u);  // u
  EXPECT_EQ(a->state_name(a->initial()), "send_G");
  // await_chi has exactly one receive + one timeout exit.
  int receives = 0;
  int timeouts = 0;
  for (const auto& t : a->transitions()) {
    if (a->state_name(t.from) == "await_chi") {
      receives += t.kind == anta::Transition::Kind::kReceive;
      timeouts += t.kind == anta::Transition::Kind::kTimeout;
    }
  }
  EXPECT_EQ(receives, 1);
  EXPECT_EQ(timeouts, 1);
}

TEST(Figure2Builders, CustomerShapes) {
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(1);
  const auto ctx = make_ctx(3, ledger, escrows, keys);
  // Alice: await_G, pay, await_outcome + 2 finals = 5 states.
  EXPECT_EQ(build_alice_automaton(ctx)->state_count(), 5u);
  // Bob: await_P, send_chi, await_$, done = 4 states.
  EXPECT_EQ(build_bob_automaton(ctx)->state_count(), 4u);
  // Chloe: await_G, await_P, pay, await_outcome, fwd_chi, await_$, 2 finals.
  EXPECT_EQ(build_connector_automaton(ctx, 1)->state_count(), 8u);
  // Dispatch helper.
  EXPECT_EQ(build_customer_automaton(ctx, 0)->name(), "alice");
  EXPECT_EQ(build_customer_automaton(ctx, 3)->name(), "bob");
  EXPECT_EQ(build_customer_automaton(ctx, 2)->name(), "chloe_2");
  EXPECT_THROW(build_connector_automaton(ctx, 0), std::logic_error);
  EXPECT_THROW(build_connector_automaton(ctx, 3), std::logic_error);
}

// --- adversarial-content tests driven through a real run ---

/// A malicious actor that fires arbitrary messages into a running protocol.
class Injector final : public net::Actor {
 public:
  std::function<void(Injector&)> script;
  void on_start() override {
    if (script) {
      sim().schedule_at(TimePoint::origin() + Duration::millis(1),
                        [this] { script(*this); });
    }
  }
  void on_message(const net::Message&) override {}
  using net::Actor::send;
};

TEST(Figure2Security, BogusMoneyMessagesIgnored) {
  // An injected "$" with an invalid receipt must not advance any escrow:
  // the run proceeds to a normal happy-path completion, and conservation
  // holds (the injector cannot mint).
  auto cfg = exp::thm1_config(2, 21);
  auto record = run_time_bounded(cfg);
  const auto clean_msgs = record.stats.messages_sent;

  // Re-run with an extra injector process is not directly supported by the
  // runner; instead check at the component level:
  sim::Simulator sim(3);
  props::TraceRecorder trace;
  net::Network net(sim,
                   std::make_unique<net::SynchronousModel>(Duration::millis(1),
                                                           Duration::millis(5)),
                   &trace);
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(5);

  auto ctx = std::make_shared<Fig2Context>();
  ctx->spec = DealSpec::uniform(4, 1, 100, 0);
  ctx->parts.customers = {sim::ProcessId(0), sim::ProcessId(1)};
  ctx->parts.escrows = {sim::ProcessId(2)};
  ctx->schedule = TimelockSchedule::drift_compensated(1, exp::default_timing());
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->trace = &trace;
  ctx->bob_signer = keys.signer_for(ctx->parts.bob());

  // Spawn only the escrow; drive it manually from an injector posing as c_0.
  auto& alice_poser = sim.spawn<Injector>("poser");   // id 0 == c_0
  auto& bob_poser = sim.spawn<Injector>("bob-poser"); // id 1 == c_1 (bob)
  auto& escrow = sim.spawn<anta::Interpreter>(
      "escrow_0", build_escrow_automaton(ctx, 0), Duration::millis(1));
  ASSERT_EQ(escrow.id().value(), 2u);
  net.attach(alice_poser);
  net.attach(bob_poser);
  net.attach(escrow);

  alice_poser.script = [&](Injector& self) {
    // Claim payment with a receipt that does not exist.
    auto fake = std::make_shared<MoneyMsg>();
    fake->deal_id = ctx->spec.deal_id;
    fake->receipt = 777;
    fake->amount = ctx->spec.hop_amount(0);
    self.send(escrow.id(), "$", fake);
  };
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  // The escrow is still waiting for real money: state await_$ (index 1).
  EXPECT_FALSE(escrow.finished());
  EXPECT_EQ(escrow.automaton().state_name(escrow.state()), "await_$");
  EXPECT_EQ(ledger.sum_of_balances(Currency::generic()), 0);
  (void)clean_msgs;
}

TEST(Figure2Security, CrossDealChiRejected) {
  // Bob's chi for deal A must not release escrows of deal B: run deal B
  // normally but have Bob's interceptor substitute a chi signed for deal A.
  auto cfg = exp::thm1_config(1, 31);
  cfg.spec = DealSpec::uniform(/*deal_id=*/55, 1, 100, 0);
  cfg.extra_horizon = Duration::seconds(5);
  // kFakeCert substitutes a junk signature; here we want a *valid* signature
  // for the wrong deal, which is what a replayed certificate looks like.
  // Use the adversary-free runner plus a custom interceptor via byzantine
  // kFakeCert — the receiver-side check is the same code path (accept_chi
  // verifies deal id before the signature), and test_crypto covers digest
  // separation; so here assert end-to-end that a wrong-deal cert never pays.
  cfg.byzantine = {ByzantineAssignment::customer(1, ByzStrategy::kFakeCert)};
  const auto record = run_time_bounded(cfg);
  EXPECT_FALSE(record.bob_paid());
  for (const auto& d : record.escrow_deals) {
    EXPECT_EQ(d.state, ledger::EscrowState::kRefunded);
  }
}

TEST(Figure2Security, WrongAmountPromisesNotAccepted) {
  // A PromiseG advertising a different amount than the deal's hop value is
  // rejected by Alice's accept callback — she never pays. Component-level:
  sim::Simulator sim(9);
  props::TraceRecorder trace;
  net::Network net(sim,
                   std::make_unique<net::SynchronousModel>(Duration::millis(1),
                                                           Duration::millis(5)),
                   &trace);
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(5);

  auto ctx = std::make_shared<Fig2Context>();
  ctx->spec = DealSpec::uniform(4, 1, 100, 0);
  ctx->parts.customers = {sim::ProcessId(0), sim::ProcessId(1)};
  ctx->parts.escrows = {sim::ProcessId(2)};
  ctx->schedule = TimelockSchedule::drift_compensated(1, exp::default_timing());
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->trace = &trace;
  ctx->bob_signer = keys.signer_for(ctx->parts.bob());

  auto& alice = sim.spawn<anta::Interpreter>(
      "alice", build_alice_automaton(ctx), Duration::millis(1));
  ASSERT_EQ(alice.id().value(), 0u);
  auto& sink = sim.spawn<Injector>("sink");
  auto& escrow_poser = sim.spawn<Injector>("escrow-poser");  // id 2 == e_0
  (void)sink;
  net.attach(alice);
  net.attach(escrow_poser);
  ledger.mint(alice.id(), Amount(100, Currency::generic()));

  escrow_poser.script = [&](Injector& self) {
    auto g = std::make_shared<PromiseG>();
    g->deal_id = ctx->spec.deal_id;
    g->d = ctx->schedule.d(0);
    g->amount = Amount(999, Currency::generic());  // not the deal's value
    self.send(alice.id(), "G", g);
  };
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(alice.automaton().state_name(alice.state()), "await_G");
  EXPECT_EQ(ledger.balance(alice.id(), Currency::generic()).units(), 100);
}

TEST(Figure2Security, WrongDealPromiseIgnored) {
  // Same rig, PromiseG for a different deal id: also ignored.
  sim::Simulator sim(10);
  props::TraceRecorder trace;
  net::Network net(sim,
                   std::make_unique<net::SynchronousModel>(Duration::millis(1),
                                                           Duration::millis(5)),
                   &trace);
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(6);

  auto ctx = std::make_shared<Fig2Context>();
  ctx->spec = DealSpec::uniform(4, 1, 100, 0);
  ctx->parts.customers = {sim::ProcessId(0), sim::ProcessId(1)};
  ctx->parts.escrows = {sim::ProcessId(2)};
  ctx->schedule = TimelockSchedule::drift_compensated(1, exp::default_timing());
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->trace = &trace;
  ctx->bob_signer = keys.signer_for(ctx->parts.bob());

  auto& alice = sim.spawn<anta::Interpreter>(
      "alice", build_alice_automaton(ctx), Duration::millis(1));
  auto& sink = sim.spawn<Injector>("sink");
  auto& escrow_poser = sim.spawn<Injector>("escrow-poser");
  (void)sink;
  net.attach(alice);
  net.attach(escrow_poser);
  ledger.mint(alice.id(), Amount(100, Currency::generic()));

  escrow_poser.script = [&](Injector& self) {
    auto g = std::make_shared<PromiseG>();
    g->deal_id = 999;  // some other deal
    g->d = ctx->schedule.d(0);
    g->amount = ctx->spec.hop_amount(0);
    self.send(alice.id(), "G", g);
  };
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(alice.automaton().state_name(alice.state()), "await_G");
}

}  // namespace
}  // namespace xcp::proto
