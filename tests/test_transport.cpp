// Transport-seam tests: gateway interception semantics, the in-sim
// SimTransport differential, supervised SocketTransport behaviour
// (framing, reconnect, heartbeat death, resurrection, garbage rejection)
// between two in-process endpoints, and the multi-process committee
// differential that spawns real xcp_node processes over unix sockets —
// including the kill -9 degradation demanded by the robustness criteria.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "consensus/standalone.hpp"
#include "net/node_runtime.hpp"
#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "proto/bodies.hpp"

extern char** environ;

namespace xcp {
namespace {

using namespace std::chrono_literals;
using net::Message;

// ------------------------------------------------------------- helpers

class SeamSink final : public net::Actor {
 public:
  void on_message(const Message& m) override { received.push_back(m); }
  std::vector<Message> received;
};

class RecordingTransport final : public net::Transport {
 public:
  void send(const Message& m) override { sent.push_back(m); }
  std::vector<Message> sent;
};

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/xcp_transport.XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    // Best-effort cleanup of sockets and capture files.
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

/// Pumps every transport in turn until `pred` holds or `budget` elapses.
bool pump_until(std::vector<net::SocketTransport*> ts,
                const std::function<bool()>& pred,
                std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto* t : ts) t->pump(2ms);
    if (pred()) return true;
  }
  return pred();
}

Message money_message(std::uint64_t id, std::uint32_t from, std::uint32_t to,
                      std::int64_t units) {
  Message m;
  m.id = id;
  m.from = sim::ProcessId(from);
  m.to = sim::ProcessId(to);
  m.kind = net::kinds::money;
  auto body = net::make_body<proto::MoneyMsg>();
  body->deal_id = 13;
  body->receipt = id;
  body->amount = Amount(units, Currency::generic());
  m.body = body;
  return m;
}

// ------------------------------------------------------- gateway seam

TEST(GatewaySeam, InterceptsOnlyUnattachedDestinations) {
  sim::Simulator sim(1);
  net::Network network(sim,
                       net::DelayModel::synchronous(Duration::millis(1)));
  auto& local_a = sim.spawn<SeamSink>("local_a");
  auto& local_b = sim.spawn<SeamSink>("local_b");
  network.attach(local_a);
  network.attach(local_b);
  RecordingTransport gateway;
  network.set_gateway(&gateway);

  network.send(local_a.id(), local_b.id(), net::kinds::claim, nullptr);
  network.send(local_a.id(), sim::ProcessId(77), net::kinds::claim, nullptr);
  sim.run_until(TimePoint::origin() + Duration::seconds(1));

  // Local destination: delivered in-sim, gateway never consulted.
  ASSERT_EQ(local_b.received.size(), 1u);
  // Unattached destination: left through the gateway with the full message.
  ASSERT_EQ(gateway.sent.size(), 1u);
  EXPECT_EQ(gateway.sent[0].to, sim::ProcessId(77));
  EXPECT_EQ(network.stats().messages_gatewayed, 1u);

  // Remote arrival: inject() schedules normal delivery at the current
  // instant with a fresh local id.
  Message incoming;
  incoming.id = 0;
  incoming.from = sim::ProcessId(77);
  incoming.to = local_a.id();
  incoming.kind = net::kinds::claim;
  network.inject(incoming);
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  ASSERT_EQ(local_a.received.size(), 1u);
  EXPECT_EQ(local_a.received[0].from, sim::ProcessId(77));
  EXPECT_NE(local_a.received[0].id, 0u);
  EXPECT_EQ(network.stats().messages_injected, 1u);
}

TEST(GatewaySeam, NoGatewayMeansNoBehaviourChange) {
  // The seam must be invisible when unused: stats stay zero and nothing
  // about delivery changes (the pre-seam drop of unattached sends).
  sim::Simulator sim(1);
  net::Network network(sim,
                       net::DelayModel::synchronous(Duration::millis(1)));
  auto& sink = sim.spawn<SeamSink>("sink");
  network.attach(sink);
  network.send(sink.id(), sim::ProcessId(99), net::kinds::claim, nullptr);
  sim.run_until(TimePoint::origin() + Duration::seconds(1));
  EXPECT_EQ(network.stats().messages_gatewayed, 0u);
  EXPECT_EQ(network.stats().messages_injected, 0u);
}

// ------------------------------------------- SimTransport differential

TEST(SimTransportDifferential, OutcomeIdenticalWithAndWithoutSeam) {
  for (const auto value : {consensus::Value::kCommit,
                           consensus::Value::kAbort}) {
    consensus::StandaloneCommittee sc;
    sc.evidence = value;
    const auto direct = run_standalone_sim(sc);
    const auto seamed = run_standalone_sim(sc, [](net::Network& n) {
      return std::make_unique<net::SimTransport>(n);
    });
    ASSERT_TRUE(direct.value.has_value());
    EXPECT_EQ(direct.canonical(), seamed.canonical());
    // Fully deterministic in-sim: even the certificates match byte for
    // byte once wire-encoded.
    EXPECT_EQ(net::serialize_certificate(direct.cert),
              net::serialize_certificate(seamed.cert));
  }
}

// ------------------------------------------------ socket transport

net::SocketTransportOptions fast_opts() {
  net::SocketTransportOptions o;
  o.heartbeat_interval = 20ms;
  o.peer_timeout = 500ms;
  o.reconnect_base = 10ms;
  o.reconnect_cap = 50ms;
  return o;
}

TEST(SocketTransport, DeliversMessagesAndHeartbeats) {
  TempDir dir;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), fast_opts());
  net::SocketTransport b(1, "unix:" + dir.file("b.sock"), fast_opts());
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  b.add_peer(0, "unix:" + dir.file("a.sock"));
  a.map_pid(sim::ProcessId(5), 1);

  std::vector<Message> got;
  b.set_receive_handler([&](Message&& m) { got.push_back(std::move(m)); });

  a.send(money_message(9, 4, 5, 1234));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !got.empty(); }, 3000ms));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 9u);
  EXPECT_EQ(got[0].from, sim::ProcessId(4));
  EXPECT_EQ(got[0].to, sim::ProcessId(5));
  const auto* body = got[0].body_as<proto::MoneyMsg>();
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->amount, Amount(1234, Currency::generic()));

  // Heartbeats flow on both dialed connections and both peers stay up.
  EXPECT_TRUE(pump_until({&a, &b},
                         [&] {
                           return a.stats().heartbeats_received > 0 &&
                                  b.stats().heartbeats_received > 0;
                         },
                         3000ms));
  EXPECT_TRUE(a.peer_up(1));
  EXPECT_TRUE(b.peer_up(0));
  EXPECT_GT(a.stats().heartbeats_sent, 0u);
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(b.stats().messages_received, 1u);

  // Self-mapped pids loop back through the codec to the local handler.
  std::vector<Message> local;
  a.set_receive_handler([&](Message&& m) { local.push_back(std::move(m)); });
  a.map_pid(sim::ProcessId(6), 0);
  a.send(money_message(10, 5, 6, 1));
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].id, 10u);

  // Unmapped destination pids are a counted drop, not an error.
  const auto dropped_before = a.stats().sends_dropped;
  a.send(money_message(11, 5, 1000, 1));
  EXPECT_EQ(a.stats().sends_dropped, dropped_before + 1);
}

TEST(SocketTransport, QueuedSendsSurviveLateListenerViaReconnect) {
  TempDir dir;
  auto opts = fast_opts();
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), opts);
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  a.map_pid(sim::ProcessId(5), 1);
  a.send(money_message(21, 4, 5, 7));

  // Dial the absent peer long enough to burn several backoff rungs.
  (void)pump_until({&a}, [] { return false; }, 150ms);
  EXPECT_GT(a.stats().dial_attempts, 1u);
  EXPECT_GT(a.stats().reconnects, 0u);
  EXPECT_FALSE(a.peer_connected(1));

  // Now the listener appears; the pre-connect queue must drain to it.
  net::SocketTransport b(1, "unix:" + dir.file("b.sock"), opts);
  b.add_peer(0, "unix:" + dir.file("a.sock"));
  std::vector<Message> got;
  b.set_receive_handler([&](Message&& m) { got.push_back(std::move(m)); });
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !got.empty(); }, 3000ms));
  EXPECT_EQ(got[0].id, 21u);
  EXPECT_TRUE(a.peer_connected(1));
}

TEST(SocketTransport, HeartbeatDeathThenResurrection) {
  TempDir dir;
  auto opts = fast_opts();
  opts.peer_timeout = 150ms;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), opts);
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  a.map_pid(sim::ProcessId(5), 1);
  std::vector<std::pair<std::uint32_t, long>> downs;
  a.set_peer_down_handler([&](std::uint32_t node,
                              std::chrono::milliseconds silent) {
    downs.emplace_back(node, static_cast<long>(silent.count()));
  });

  std::optional<net::SocketTransport> b;
  b.emplace(1, "unix:" + dir.file("b.sock"), opts);
  b->add_peer(0, "unix:" + dir.file("a.sock"));
  ASSERT_TRUE(pump_until({&a, &*b}, [&] { return a.peer_up(1) &&
                                                 a.peer_connected(1); },
                         3000ms));

  // Kill B. A must declare it down by heartbeat silence, exactly once,
  // reporting at least the configured deadline of silence.
  b.reset();
  ASSERT_TRUE(pump_until({&a}, [&] { return !a.peer_up(1); }, 3000ms));
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].first, 1u);
  EXPECT_GE(downs[0].second, 150);
  EXPECT_EQ(a.stats().peers_down, 1u);

  // Crashed-participant semantics: sends to the dead peer are dropped.
  const auto dropped_before = a.stats().sends_dropped;
  a.send(money_message(31, 4, 5, 7));
  EXPECT_EQ(a.stats().sends_dropped, dropped_before + 1);

  // A reborn peer that speaks again is resurrected.
  b.emplace(1, "unix:" + dir.file("b.sock"), opts);
  b->add_peer(0, "unix:" + dir.file("a.sock"));
  ASSERT_TRUE(pump_until({&a, &*b}, [&] { return a.peer_up(1); }, 3000ms));
  EXPECT_EQ(a.stats().peers_resurrected, 1u);
  ASSERT_EQ(downs.size(), 1u) << "down handler must fire once per epoch";
}

TEST(SocketTransport, GarbageConnectionIsDroppedWithoutHarm) {
  TempDir dir;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), fast_opts());

  // A rogue client frames 16 bytes of garbage: the transport must count a
  // wire reject and drop that connection — never the process.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::snprintf(sa.sun_path, sizeof(sa.sun_path), "%s",
                dir.file("a.sock").c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  std::vector<std::uint8_t> evil = {16, 0, 0, 0};
  for (int i = 0; i < 16; ++i) evil.push_back(0xa5);
  ASSERT_EQ(::write(fd, evil.data(), evil.size()),
            static_cast<ssize_t>(evil.size()));

  ASSERT_TRUE(
      pump_until({&a}, [&] { return a.stats().wire_rejects > 0; }, 3000ms));

  // The transport hung up on the rogue connection...
  char buf[8];
  ssize_t n = -1;
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (std::chrono::steady_clock::now() < deadline) {
    n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) break;  // orderly EOF from the transport
    a.pump(2ms);
  }
  EXPECT_EQ(n, 0);
  ::close(fd);

  // ...and its listener still accepts new connections.
  const int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  ::close(fd2);
}

TEST(SocketTransport, ManyMessagesReassembleAcrossPartialReads) {
  // Enough queued traffic to overflow any single recv() (the transport
  // reads 64 KiB at a time): frames necessarily split across reads and
  // must reassemble in order.
  TempDir dir;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), fast_opts());
  net::SocketTransport b(1, "unix:" + dir.file("b.sock"), fast_opts());
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  b.add_peer(0, "unix:" + dir.file("a.sock"));
  a.map_pid(sim::ProcessId(5), 1);

  std::vector<std::uint64_t> got_ids;
  b.set_receive_handler([&](Message&& m) { got_ids.push_back(m.id); });

  constexpr std::uint64_t kCount = 3000;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    a.send(money_message(i, 4, 5, static_cast<std::int64_t>(i)));
  }
  ASSERT_TRUE(
      pump_until({&a, &b}, [&] { return got_ids.size() >= kCount; }, 10000ms));
  ASSERT_EQ(got_ids.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(got_ids[i], i) << "out-of-order delivery at " << i;
  }
}

// ------------------------------------- reconnect backoff regressions

TEST(SocketTransport, DialBackoffPlateausAtCapWithoutOverflow) {
  // The backoff schedule is a pure function (net/socket_transport.hpp
  // dial_backoff): exponential from reconnect_base, hard-capped. Repeated
  // dial failures must plateau — huge attempt counts can neither overflow
  // the multiplication nor escape the cap via jitter drift.
  net::SocketTransportOptions o;
  o.reconnect_base = 10ms;
  o.reconnect_multiplier = 2.0;
  o.reconnect_cap = 1000ms;
  o.reconnect_jitter = 0.25;
  const auto ceiling = std::chrono::milliseconds(
      static_cast<long>(1000 * (1.0 + o.reconnect_jitter)) + 1);

  std::chrono::milliseconds at_saturation{0};
  for (int attempt = 1; attempt <= 100'000;
       attempt = attempt < 64 ? attempt + 1 : attempt * 7) {
    const auto d = net::dial_backoff(o, /*node=*/3, attempt);
    EXPECT_GE(d, 1ms) << attempt;
    EXPECT_LE(d, ceiling) << attempt;
    // Deterministic: the same (options, node, attempt) always maps to the
    // same delay.
    EXPECT_EQ(d, net::dial_backoff(o, 3, attempt)) << attempt;
    if (attempt >= 64) {
      // Far past saturation the schedule is frozen: one fixed plateau
      // value, not a random walk under the cap.
      if (at_saturation.count() == 0) at_saturation = d;
      EXPECT_EQ(d, at_saturation) << attempt;
    }
  }

  // INT_MAX attempts: still finite, still capped (the historical failure
  // mode was O(attempt) doubling work and double overflow to inf).
  EXPECT_LE(net::dial_backoff(o, 3, std::numeric_limits<int>::max()),
            ceiling);
}

TEST(SocketTransport, ResurrectedPeerResetsDialBackoff) {
  TempDir dir;
  auto opts = fast_opts();
  opts.peer_timeout = 150ms;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), opts);
  a.add_peer(1, "unix:" + dir.file("b.sock"));

  // No listener: dial failures accumulate and the backoff climbs.
  ASSERT_TRUE(
      pump_until({&a}, [&] { return a.reconnect_attempt(1) >= 4; }, 5000ms));
  ASSERT_TRUE(pump_until({&a}, [&] { return !a.peer_up(1); }, 3000ms));
  const int burned = a.reconnect_attempt(1);
  ASSERT_GE(burned, 4);

  // The peer comes back and dials us: hearing from it must reset the
  // accumulated attempts so our redial is prompt, not at the capped rung.
  net::SocketTransport b(1, "unix:" + dir.file("b.sock"), opts);
  b.add_peer(0, "unix:" + dir.file("a.sock"));
  ASSERT_TRUE(pump_until({&a, &b},
                         [&] { return a.peer_up(1) && a.peer_connected(1); },
                         3000ms));
  EXPECT_EQ(a.stats().peers_resurrected, 1u);
  // Connected again: the attempt counter is back at zero.
  EXPECT_EQ(a.reconnect_attempt(1), 0);
  EXPECT_EQ(a.reconnect_attempt(9), -1);  // unknown node sentinel
}

// ------------------------------------ hello status & catch-up frames

TEST(SocketTransport, HelloStatusIsAnnouncedAndReannounced) {
  TempDir dir;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), fast_opts());
  net::SocketTransport b(1, "unix:" + dir.file("b.sock"), fast_opts());
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  b.add_peer(0, "unix:" + dir.file("a.sock"));

  a.set_hello_status(net::hello_status_word(1, true));
  std::vector<std::pair<std::uint32_t, std::uint64_t>> seen;
  b.set_peer_status_handler([&](std::uint32_t node, std::uint64_t status) {
    seen.emplace_back(node, status);
  });
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !seen.empty(); }, 3000ms));
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_EQ(net::hello_status_tier(seen[0].second), 1u);
  EXPECT_TRUE(net::hello_status_recovered(seen[0].second));

  // A status change is re-announced on the live connection (no redial).
  a.set_hello_status(net::hello_status_word(2, true));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return seen.size() >= 2; }, 3000ms));
  EXPECT_EQ(net::hello_status_tier(seen.back().second), 2u);
  EXPECT_GE(b.stats().hellos_received, 2u);
}

TEST(SocketTransport, CatchUpRequestReachesPeerAndRepeatsOnRedial) {
  TempDir dir;
  auto opts = fast_opts();
  opts.peer_timeout = 150ms;
  net::SocketTransport a(0, "unix:" + dir.file("a.sock"), opts);
  a.add_peer(1, "unix:" + dir.file("b.sock"));
  a.set_hello_status(net::hello_status_word(1, true));
  a.request_catchup(13);
  EXPECT_TRUE(a.catchup_active());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> asks;
  auto arm = [&](net::SocketTransport& t) {
    t.set_catchup_handler(
        [&](std::uint32_t node, std::uint64_t instance, std::uint64_t status) {
          EXPECT_EQ(node, 0u);
          asks.emplace_back(instance, status);
        });
  };

  // The request was made before any connection existed: it must go out on
  // the first successful dial.
  std::optional<net::SocketTransport> b;
  b.emplace(1, "unix:" + dir.file("b.sock"), opts);
  b->add_peer(0, "unix:" + dir.file("a.sock"));
  arm(*b);
  ASSERT_TRUE(pump_until({&a, &*b}, [&] { return !asks.empty(); }, 3000ms));
  EXPECT_EQ(asks[0].first, 13u);
  EXPECT_EQ(net::hello_status_tier(asks[0].second), 1u);

  // The peer restarts; while catch-up is active the request repeats on the
  // fresh dial — a rejoiner keeps asking until it converges.
  b.reset();
  ASSERT_TRUE(pump_until({&a}, [&] { return !a.peer_up(1); }, 3000ms));
  b.emplace(1, "unix:" + dir.file("b.sock"), opts);
  b->add_peer(0, "unix:" + dir.file("a.sock"));
  arm(*b);
  ASSERT_TRUE(pump_until({&a, &*b}, [&] { return asks.size() >= 2; }, 5000ms));

  // cancel_catchup stops the stream: a third restart sees no request.
  a.cancel_catchup();
  EXPECT_FALSE(a.catchup_active());
  const std::size_t before = asks.size();
  b.reset();
  ASSERT_TRUE(pump_until({&a}, [&] { return !a.peer_up(1); }, 3000ms));
  b.emplace(1, "unix:" + dir.file("b.sock"), opts);
  b->add_peer(0, "unix:" + dir.file("a.sock"));
  arm(*b);
  ASSERT_TRUE(pump_until({&a, &*b},
                         [&] { return a.peer_connected(1) && a.peer_up(1); },
                         3000ms));
  (void)pump_until({&a, &*b}, [] { return false; }, 100ms);
  EXPECT_EQ(asks.size(), before);
}

// ------------------------------------------ runtime pacing vs the clock

TEST(NodeRuntime, WallClockJumpDeliversEveryMissedTickInOrder) {
  // A suspended/paused process misses a burst of wall ticks; on resume the
  // runtime must absorb the jump as one run_until — every pending
  // simulation event fires, in order, exactly once, with no busy-spin
  // re-polling and no skipped events.
  TempDir dir;
  sim::Simulator sim(1);
  net::Network network(sim,
                       net::DelayModel::synchronous(Duration::millis(1)));
  net::SocketTransport transport(0, "unix:" + dir.file("rt.sock"),
                                 fast_opts());
  net::NodeRuntime runtime(sim, network, transport);

  // Injected clock: starts at an arbitrary origin, advances only when the
  // test says so. Count calls to bound the loop's polling behaviour.
  const auto origin = std::chrono::steady_clock::now();
  std::chrono::milliseconds fake_elapsed{0};
  int clock_calls = 0;
  runtime.set_clock([&] {
    ++clock_calls;
    return origin + fake_elapsed;
  });

  std::vector<int> fired;
  for (int i = 1; i <= 50; ++i) {
    sim.schedule_at(TimePoint::origin() + Duration::millis(10 * i),
                    [&fired, i] { fired.push_back(i); });
  }

  // First slice: clock at 25ms — only events 1..2 are due.
  bool done = runtime.run(std::chrono::milliseconds(0),
                          [&] { return fired.size() >= 2; });
  fake_elapsed = std::chrono::milliseconds(25);
  done = runtime.run(std::chrono::milliseconds(50),
                     [&] { return fired.size() >= 2; });
  ASSERT_TRUE(done);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));

  // The clock now leaps 10 wall-minutes past every scheduled event (a
  // suspend, an NTP step, a debugger pause). One run must deliver all 48
  // remaining events in order — not skip them, not replay 1 and 2.
  fake_elapsed = std::chrono::minutes(10);
  const int calls_before = clock_calls;
  done = runtime.run(std::chrono::milliseconds(1000),
                     [&] { return fired.size() >= 50; });
  ASSERT_TRUE(done);
  ASSERT_EQ(fired.size(), 50u);
  for (int i = 1; i <= 50; ++i) EXPECT_EQ(fired[i - 1], i);
  // Absorbing the jump is O(1) loop iterations, not one poll per missed
  // tick: a generous bound still catches a 48-iteration busy-spin.
  EXPECT_LE(clock_calls - calls_before, 24);

  // A backwards step (the wall clock is supposed to be steady, but be
  // defensive) clamps to "no progress" instead of underflowing.
  fake_elapsed = std::chrono::milliseconds(5);
  done = runtime.run(std::chrono::milliseconds(0), [&] { return true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(fired.size(), 50u);  // nothing re-fired
}

// ----------------------------------------------- TCP endpoints

/// A loopback port range unlikely to collide across concurrent test runs.
int tcp_base_port() { return 20'000 + static_cast<int>(::getpid() % 20'000); }

TEST(SocketTransport, TcpEndpointsDeliverMessagesAndHeartbeats) {
  // The transport logic is address-family-agnostic; this pins the tcp:
  // scheme end to end — bind, non-blocking connect, framing, heartbeats —
  // on real loopback TCP sockets.
  const int base = tcp_base_port();
  const std::string addr_a = "tcp:127.0.0.1:" + std::to_string(base);
  const std::string addr_b = "tcp:127.0.0.1:" + std::to_string(base + 1);
  net::SocketTransport a(0, addr_a, fast_opts());
  net::SocketTransport b(1, addr_b, fast_opts());
  a.add_peer(1, addr_b);
  b.add_peer(0, addr_a);
  a.map_pid(sim::ProcessId(5), 1);

  std::vector<Message> got;
  b.set_receive_handler([&](Message&& m) { got.push_back(std::move(m)); });

  a.send(money_message(9, 4, 5, 1234));
  ASSERT_TRUE(pump_until({&a, &b}, [&] { return !got.empty(); }, 3000ms));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 9u);
  const auto* body = got[0].body_as<proto::MoneyMsg>();
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->amount, Amount(1234, Currency::generic()));

  EXPECT_TRUE(pump_until({&a, &b},
                         [&] {
                           return a.stats().heartbeats_received > 0 &&
                                  b.stats().heartbeats_received > 0;
                         },
                         3000ms));
  EXPECT_TRUE(a.peer_up(1));
  EXPECT_TRUE(b.peer_up(0));
}

// --------------------------------------- multi-process differential

std::string node_bin_or_skip() {
  if (const char* env = std::getenv("XCP_NODE_BIN")) {
    if (::access(env, X_OK) == 0) return env;
  }
  if (::access("./xcp_node", X_OK) == 0) return "./xcp_node";
  return {};
}

pid_t spawn_node(const std::string& bin,
                 const std::vector<std::string>& extra_args,
                 const std::string& out_path) {
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, out_path.c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0644);
  posix_spawn_file_actions_addopen(&actions, STDERR_FILENO,
                                   (out_path + ".err").c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0644);
  std::vector<std::string> argv_s;
  argv_s.push_back(bin);
  argv_s.insert(argv_s.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  for (auto& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin.c_str(), &actions, nullptr, argv.data(),
                    environ);
  posix_spawn_file_actions_destroy(&actions);
  return rc == 0 ? pid : -1;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string line_with_prefix(const std::string& text,
                             const std::string& prefix) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return {};
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(NodeCommittee, SocketOutcomeMatchesInSimReference) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";

  for (const char* value : {"commit", "abort"}) {
    consensus::StandaloneCommittee sc;
    sc.evidence = std::strcmp(value, "commit") == 0
                      ? consensus::Value::kCommit
                      : consensus::Value::kAbort;
    const auto ref = run_standalone_sim(sc);
    ASSERT_TRUE(ref.value.has_value()) << "reference run undecided";
    ASSERT_TRUE(ref.cert_valid);

    TempDir dir;
    const std::vector<std::string> common = {
        "--sock-dir",       dir.path, "--value", value,
        "--wall-limit-ms",  "30000"};
    std::vector<pid_t> notary_pids;
    for (int k = 0; k < sc.notaries; ++k) {
      auto args = common;
      args.insert(args.end(), {"--node-id", std::to_string(k)});
      const pid_t pid =
          spawn_node(bin, args, dir.file("out-" + std::to_string(k)));
      ASSERT_GT(pid, 0);
      notary_pids.push_back(pid);
    }
    auto client_args = common;
    client_args.insert(client_args.end(),
                       {"--node-id", std::to_string(sc.notaries)});
    const pid_t client = spawn_node(bin, client_args, dir.file("out-client"));
    ASSERT_GT(client, 0);

    EXPECT_EQ(wait_exit(client), 0) << slurp(dir.file("out-client.err"));
    for (int k = 0; k < sc.notaries; ++k) {
      EXPECT_EQ(wait_exit(notary_pids[k]), 0)
          << slurp(dir.file("out-" + std::to_string(k) + ".err"));
    }

    // The protocol outcome over real sockets must equal the in-sim
    // reference (canonical() excludes the exact signer subset — over
    // sockets a different valid 2f+1 subset may sign).
    const std::string out = slurp(dir.file("out-client"));
    EXPECT_EQ(line_with_prefix(out, "OUTCOME "),
              "OUTCOME " + ref.canonical())
        << out;

    // And the printed certificate must wire-decode and verify against the
    // independently derived key registry.
    const std::string cert_line = line_with_prefix(out, "CERT ");
    ASSERT_FALSE(cert_line.empty()) << out;
    crypto::KeyRegistry keys = sc.make_keys();
    auto config = sc.make_config(keys);
    net::WireContext wctx;
    wctx.roster = &config->members;
    const crypto::Certificate cert =
        net::parse_certificate(from_hex(cert_line.substr(5)), wctx);
    EXPECT_EQ(cert.kind, ref.cert.kind);
    EXPECT_EQ(cert.deal_id, ref.cert.deal_id);
    EXPECT_EQ(cert.issuer, ref.cert.issuer);
    EXPECT_TRUE(crypto::verify_quorum_cert(
        keys, cert, config->members,
        static_cast<std::size_t>(config->quorum())));
  }
}

TEST(NodeCommittee, TcpAddressedCommitteeMatchesInSimReference) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";

  // The same multi-process differential over explicit tcp: endpoints
  // (--listen / --peer) instead of the --sock-dir unix scheme — the
  // deployment shape a real multi-host committee uses.
  consensus::StandaloneCommittee sc;
  const auto ref = run_standalone_sim(sc);
  ASSERT_TRUE(ref.value.has_value()) << "reference run undecided";

  const int base = tcp_base_port() + 100;  // clear of the in-process test
  const auto addr = [&](int node) {
    return "tcp:127.0.0.1:" + std::to_string(base + node);
  };

  TempDir dir;  // only for output capture files
  std::vector<pid_t> pids;
  for (int k = 0; k <= sc.notaries; ++k) {
    std::vector<std::string> args = {"--node-id",       std::to_string(k),
                                     "--listen",        addr(k),
                                     "--value",         "commit",
                                     "--wall-limit-ms", "30000"};
    for (int j = 0; j <= sc.notaries; ++j) {
      if (j == k) continue;
      args.insert(args.end(), {"--peer", std::to_string(j) + "=" + addr(j)});
    }
    const pid_t pid =
        spawn_node(bin, args, dir.file("out-" + std::to_string(k)));
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  for (int k = 0; k <= sc.notaries; ++k) {
    EXPECT_EQ(wait_exit(pids[static_cast<std::size_t>(k)]), 0)
        << slurp(dir.file("out-" + std::to_string(k) + ".err"));
  }
  const std::string out =
      slurp(dir.file("out-" + std::to_string(sc.notaries)));
  EXPECT_EQ(line_with_prefix(out, "OUTCOME "), "OUTCOME " + ref.canonical())
      << out;
}

TEST(NodeCommittee, SurvivesKillNineOfOneNotary) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";

  consensus::StandaloneCommittee sc;  // m=4 tolerates f=1 crash
  TempDir dir;
  const std::vector<std::string> common = {
      "--sock-dir",        dir.path, "--base-round-ms", "400",
      "--heartbeat-ms",    "40",     "--peer-timeout-ms", "250",
      "--wall-limit-ms",   "30000"};
  std::vector<pid_t> notary_pids;
  for (int k = 0; k < sc.notaries; ++k) {
    auto args = common;
    args.insert(args.end(), {"--node-id", std::to_string(k)});
    const pid_t pid =
        spawn_node(bin, args, dir.file("out-" + std::to_string(k)));
    ASSERT_GT(pid, 0);
    notary_pids.push_back(pid);
  }

  // Let the committee mesh come up, then kill -9 the last notary — an
  // abrupt crash with no goodbye, exactly the paper's crashed participant.
  std::this_thread::sleep_for(500ms);
  const int victim = sc.notaries - 1;
  ASSERT_EQ(::kill(notary_pids[victim], SIGKILL), 0);

  auto client_args = common;
  client_args.insert(client_args.end(),
                     {"--node-id", std::to_string(sc.notaries)});
  const pid_t client = spawn_node(bin, client_args, dir.file("out-client"));
  ASSERT_GT(client, 0);

  // The run must still certify: f=1 crash is within tolerance.
  EXPECT_EQ(wait_exit(client), 0) << slurp(dir.file("out-client.err"));
  const std::string out = slurp(dir.file("out-client"));
  const std::string outcome = line_with_prefix(out, "OUTCOME ");
  EXPECT_NE(outcome.find("quorum=valid"), std::string::npos) << out;

  // Survivors detect the death by heartbeat within the configured
  // deadline and print the supervision line.
  EXPECT_EQ(wait_exit(notary_pids[victim]), 128 + SIGKILL);
  bool seen_peer_down = false;
  for (int k = 0; k < victim; ++k) {
    EXPECT_EQ(wait_exit(notary_pids[k]), 0)
        << slurp(dir.file("out-" + std::to_string(k) + ".err"));
    const std::string nout = slurp(dir.file("out-" + std::to_string(k)));
    if (nout.find("PEER-DOWN node=" + std::to_string(victim)) !=
        std::string::npos) {
      seen_peer_down = true;
    }
  }
  EXPECT_TRUE(seen_peer_down)
      << "no survivor reported the killed notary down";
}

}  // namespace
}  // namespace xcp
