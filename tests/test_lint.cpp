// Fixture-based tests for the xcp-lint engine (src/lint). Every rule in
// the registry gets a positive fixture (the violation is found, at the
// right line) and a negative fixture (the idiomatic alternative is not);
// suppression semantics, baseline round-trips and the spawned binary's
// exit-code taxonomy are pinned alongside. The fixtures use a Config
// whose scopes point at fixture paths, so the tests stay valid when the
// real repo layout evolves.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace fs = std::filesystem;
using namespace xcp::lint;

namespace {

Config fixture_config() {
  Config c;
  c.determinism_scopes = {"det/"};
  c.iteration_extra_scopes = {"iter/"};
  c.loop_scopes = {"loop/fix.cpp"};
  c.wire_scopes = {"wire/fix.hpp", "wire/fix.cpp"};
  c.kind_switch_extra_scopes = {"kind/extra.cpp"};
  c.hot_functions = {{"hot/fix.cpp", "hot_fn"}};
  return c;
}

RunResult run_one(const Config& c, std::string path, std::string text) {
  std::vector<SourceFile> files;
  files.push_back(make_source(std::move(path), std::move(text)));
  return run_files(c, files);
}

int count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  int n = 0;
  for (const Finding& f : fs) n += static_cast<int>(f.rule == rule);
  return n;
}

bool has_at(const std::vector<Finding>& fs, std::string_view rule, int line) {
  for (const Finding& f : fs) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

}  // namespace

// --------------------------------------------------- determinism-wall-clock

TEST(LintWallClock, FlagsChronoClockChainsAndCApi) {
  const RunResult r = run_one(fixture_config(), "det/fix.cpp",
                              "#include <chrono>\n"
                              "void f() {\n"
                              "  auto a = std::chrono::steady_clock::now();\n"
                              "  auto b = Clock::now();\n"
                              "  struct timeval tv;\n"
                              "  gettimeofday(&tv, nullptr);\n"
                              "  auto t = std::time(nullptr);\n"
                              "  (void)a; (void)b; (void)t;\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 4);
  EXPECT_TRUE(has_at(r.findings, "determinism-wall-clock", 3));
  EXPECT_TRUE(has_at(r.findings, "determinism-wall-clock", 4));
  EXPECT_TRUE(has_at(r.findings, "determinism-wall-clock", 6));
  EXPECT_TRUE(has_at(r.findings, "determinism-wall-clock", 7));
}

TEST(LintWallClock, VirtualTimeAndOutOfScopeAreClean) {
  const Config c = fixture_config();
  // sim().now() / local_now() / member now() are virtual time, not a
  // machine clock: the chain carries no clock-like qualifier.
  const RunResult in_scope = run_one(c, "det/fix.cpp",
                                     "void f() {\n"
                                     "  auto a = sim().now();\n"
                                     "  auto b = local_now();\n"
                                     "  auto c2 = queue.now();\n"
                                     "  (void)a; (void)b; (void)c2;\n"
                                     "}\n");
  EXPECT_EQ(count_rule(in_scope.findings, "determinism-wall-clock"), 0);
  // Out of the determinism scopes, even a real wall-clock read is fine.
  const RunResult out_scope =
      run_one(c, "other/fix.cpp",
              "void f() { auto t = std::chrono::steady_clock::now(); "
              "(void)t; }\n");
  EXPECT_EQ(count_rule(out_scope.findings, "determinism-wall-clock"), 0);
}

// ------------------------------------------------------ determinism-random

TEST(LintRandom, FlagsAmbientEntropy) {
  const RunResult r = run_one(fixture_config(), "det/fix.cpp",
                              "void f() {\n"
                              "  std::random_device rd;\n"
                              "  int x = rand();\n"
                              "  (void)rd; (void)x;\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-random"), 2);
  EXPECT_TRUE(has_at(r.findings, "determinism-random", 2));
  EXPECT_TRUE(has_at(r.findings, "determinism-random", 3));
}

TEST(LintRandom, MemberCallsAndSeededRngAreClean) {
  const RunResult r = run_one(fixture_config(), "det/fix.cpp",
                              "void f(Rng& rng, Obj& obj) {\n"
                              "  auto a = rng.next_u64();\n"
                              "  auto b = obj.rand();\n"
                              "  (void)a; (void)b;\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-random"), 0);
}

// ----------------------------------------------- determinism-unordered-iter

TEST(LintUnorderedIter, FlagsRangeForAndIteratorWalks) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> m_;\n"
      "  int sum() const {\n"
      "    int s = 0;\n"
      "    for (const auto& kv : m_) s += kv.second;\n"
      "    for (auto it = m_.begin(); it != m_.end(); ++it) s += it->second;\n"
      "    return s;\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-unordered-iter"), 2);
  EXPECT_TRUE(has_at(r.findings, "determinism-unordered-iter", 6));
  EXPECT_TRUE(has_at(r.findings, "determinism-unordered-iter", 7));
}

TEST(LintUnorderedIter, ResolvesMembersFromSiblingHeader) {
  const Config c = fixture_config();
  std::vector<SourceFile> files;
  files.push_back(make_source("iter/fix.hpp",
                              "#include <unordered_set>\n"
                              "struct S { std::unordered_set<int> seen_; };\n"));
  files.push_back(make_source("iter/fix.cpp",
                              "#include \"iter/fix.hpp\"\n"
                              "int f(const S& s) {\n"
                              "  int n = 0;\n"
                              "  for (int v : s.seen_) n += v;\n"
                              "  return n;\n"
                              "}\n"));
  const RunResult r = run_files(c, files);
  EXPECT_TRUE(has_at(r.findings, "determinism-unordered-iter", 4));
}

TEST(LintUnorderedIter, OrderedIterationAndLookupsAreClean) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "#include <map>\n"
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::map<int, int> ordered_;\n"
      "  std::unordered_map<int, int> m_;\n"
      "  int f(int k) const {\n"
      "    int s = 0;\n"
      "    for (const auto& kv : ordered_) s += kv.second;\n"
      "    auto it = m_.find(k);\n"
      "    return it == m_.end() ? s : s + it->second;\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-unordered-iter"), 0);
}

// ------------------------------------------------------------ hotpath-alloc

TEST(LintHotpath, FlagsAllocationInRegisteredHotFunction) {
  const RunResult r = run_one(fixture_config(), "hot/fix.cpp",
                              "void hot_fn(std::vector<int>& v) {\n"
                              "  v.push_back(1);\n"
                              "  int* p = new int(3);\n"
                              "  std::string s;\n"
                              "  char* q = (char*)malloc(4);\n"
                              "  (void)p; (void)s; (void)q;\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "hotpath-alloc"), 4);
  EXPECT_TRUE(has_at(r.findings, "hotpath-alloc", 2));
  EXPECT_TRUE(has_at(r.findings, "hotpath-alloc", 3));
  EXPECT_TRUE(has_at(r.findings, "hotpath-alloc", 4));
  EXPECT_TRUE(has_at(r.findings, "hotpath-alloc", 5));
}

TEST(LintHotpath, ColdFunctionsAndNamedHelpersAreClean) {
  const RunResult r = run_one(fixture_config(), "hot/fix.cpp",
                              "void grow();\n"
                              "void hot_fn(std::vector<int>& v) {\n"
                              "  grow();\n"
                              "  v[0] = 1;\n"
                              "}\n"
                              "void cold_fn(std::vector<int>& v) {\n"
                              "  v.push_back(2);\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "hotpath-alloc"), 0);
}

// ------------------------------------------------------------ loop-blocking

TEST(LintLoopBlocking, FlagsBlockingCallsInLoopFiles) {
  const RunResult r = run_one(
      fixture_config(), "loop/fix.cpp",
      "void supervise(int pid, int fd) {\n"
      "  int st = 0;\n"
      "  waitpid(pid, &st, 0);\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "  char buf[16];\n"
      "  read(fd, buf, sizeof buf);\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "loop-blocking"), 3);
  EXPECT_TRUE(has_at(r.findings, "loop-blocking", 3));
  EXPECT_TRUE(has_at(r.findings, "loop-blocking", 4));
  EXPECT_TRUE(has_at(r.findings, "loop-blocking", 6));
}

TEST(LintLoopBlocking, NonBlockingDisciplineIsClean) {
  const Config c = fixture_config();
  const RunResult r = run_one(
      c, "loop/fix.cpp",
      "void supervise(int pid, int fd, char* buf, int n) {\n"
      "  int st = 0;\n"
      "  waitpid(pid, &st, WNOHANG);\n"
      "  fcntl(fd, F_SETFL, O_NONBLOCK);\n"
      "  read(fd, buf, n);\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "loop-blocking"), 0);
  // Outside the registered loop files the rule does not apply at all.
  const RunResult out = run_one(c, "other/fix.cpp",
                                "void f(int pid) {\n"
                                "  int st = 0;\n"
                                "  waitpid(pid, &st, 0);\n"
                                "}\n");
  EXPECT_EQ(count_rule(out.findings, "loop-blocking"), 0);
}

// ---------------------------------------------------------- wire-fixed-width

TEST(LintFixedWidth, FlagsPlatformWidthTypesInCodecBodies) {
  const RunResult r = run_one(
      fixture_config(), "wire/fix.cpp",
      "#include <cstdint>\n"
      "void put_x(std::vector<std::uint8_t>& out) {\n"
      "  int n = 0;\n"
      "  unsigned m = 0;\n"
      "  unsigned char byte = 0;\n"
      "  std::uint32_t ok = 0;\n"
      "  (void)out; (void)n; (void)m; (void)byte; (void)ok;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "wire-fixed-width"), 2);
  EXPECT_TRUE(has_at(r.findings, "wire-fixed-width", 3));
  EXPECT_TRUE(has_at(r.findings, "wire-fixed-width", 4));
}

TEST(LintFixedWidth, NonCodecFunctionsAreClean) {
  const RunResult r = run_one(fixture_config(), "wire/fix.cpp",
                              "int helper() {\n"
                              "  int fine = 1;\n"
                              "  return fine;\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "wire-fixed-width"), 0);
}

// ---------------------------------------------------- wire-exhaustive-switch

TEST(LintExhaustiveSwitch, FlagsSilentDefault) {
  const RunResult r = run_one(fixture_config(), "kind/extra.cpp",
                              "void f(int k) {\n"
                              "  switch (k) {\n"
                              "    case 0: break;\n"
                              "    default: break;\n"
                              "  }\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "wire-exhaustive-switch"), 1);
  EXPECT_TRUE(has_at(r.findings, "wire-exhaustive-switch", 4));
}

TEST(LintExhaustiveSwitch, ExhaustiveOrLoudDefaultsAreClean) {
  const RunResult r = run_one(fixture_config(), "wire/fix.cpp",
                              "void f(int k) {\n"
                              "  switch (k) {\n"
                              "    case 0: break;\n"
                              "    case 1: break;\n"
                              "  }\n"
                              "  switch (k) {\n"
                              "    case 0: break;\n"
                              "    default: throw 1;\n"
                              "  }\n"
                              "  switch (k) {\n"
                              "    case 0: break;\n"
                              "    default: XCP_REQUIRE(false, \"bad kind\");\n"
                              "  }\n"
                              "}\n");
  EXPECT_EQ(count_rule(r.findings, "wire-exhaustive-switch"), 0);
}

// ------------------------------------------------- wire-serialize-parse-pair

TEST(LintSerializeParsePair, FlagsEncoderWithoutDecoder) {
  const RunResult r = run_one(
      fixture_config(), "wire/fix.hpp",
      "#include <cstdint>\n"
      "#include <vector>\n"
      "struct Foo {};\n"
      "void serialize_foo(const Foo& f, std::vector<std::uint8_t>& out);\n");
  EXPECT_EQ(count_rule(r.findings, "wire-serialize-parse-pair"), 1);
  EXPECT_TRUE(has_at(r.findings, "wire-serialize-parse-pair", 4));
}

TEST(LintSerializeParsePair, PairAcrossHeaderAndCppIsClean) {
  const Config c = fixture_config();
  std::vector<SourceFile> files;
  files.push_back(make_source(
      "wire/fix.hpp",
      "struct Foo {};\n"
      "void serialize_foo(const Foo& f, std::vector<std::uint8_t>& out);\n"));
  files.push_back(make_source(
      "wire/fix.cpp",
      "#include \"wire/fix.hpp\"\n"
      "Foo parse_foo(const std::uint8_t* data, std::size_t size);\n"));
  const RunResult r = run_files(c, files);
  EXPECT_EQ(count_rule(r.findings, "wire-serialize-parse-pair"), 0);
}

// -------------------------------------------------------------- suppressions

TEST(LintSuppression, SameLineGrantSuppressesOnlyThatLine) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "void f() {\n"
      "  auto a = Clock::now();  // xcp-lint: allow(determinism-wall-clock) "
      "fixture reason\n"
      "  auto b = Clock::now();\n"
      "  (void)a; (void)b;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 1);
  EXPECT_TRUE(has_at(r.findings, "determinism-wall-clock", 3));
  EXPECT_EQ(count_rule(r.suppressed, "determinism-wall-clock"), 1);
  EXPECT_TRUE(has_at(r.suppressed, "determinism-wall-clock", 2));
}

TEST(LintSuppression, OwnLineBlockGrantsTheLineAfterTheBlock) {
  // The directive may sit anywhere in a contiguous own-line comment
  // block; the grant covers the first code line after it.
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "void f() {\n"
      "  // xcp-lint: allow(determinism-wall-clock) fixture reason\n"
      "  // with a longer explanation that spills onto a second line\n"
      "  auto a = Clock::now();\n"
      "  (void)a;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 0);
  EXPECT_EQ(count_rule(r.suppressed, "determinism-wall-clock"), 1);
}

TEST(LintSuppression, GrantDoesNotReachPastABlankLine) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "void f() {\n"
      "  // xcp-lint: allow(determinism-wall-clock) fixture reason\n"
      "\n"
      "  auto a = Clock::now();\n"
      "  (void)a;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 1);
}

TEST(LintSuppression, FileWideGrantCoversTheWholeFile) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "// xcp-lint: allow-file(determinism-wall-clock) fixture-wide reason\n"
      "void f() {\n"
      "  auto a = Clock::now();\n"
      "  auto b = std::chrono::steady_clock::now();\n"
      "  (void)a; (void)b;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 0);
  EXPECT_EQ(count_rule(r.suppressed, "determinism-wall-clock"), 2);
}

TEST(LintSuppression, GrantForAnotherRuleDoesNotApply) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "void f() {\n"
      "  // xcp-lint: allow(determinism-random) wrong rule for this line\n"
      "  auto a = Clock::now();\n"
      "  (void)a;\n"
      "}\n");
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 1);
}

TEST(LintDirective, ReasonlessAndUnknownRuleDirectivesAreFindings) {
  const RunResult r = run_one(
      fixture_config(), "det/fix.cpp",
      "void f() {\n"
      "  auto a = Clock::now();  // xcp-lint: allow(determinism-wall-clock)\n"
      "  // xcp-lint: allow(no-such-rule) reason text\n"
      "  (void)a;\n"
      "}\n");
  // A reasonless grant is void: the original finding survives, and the
  // directive itself is reported.
  EXPECT_EQ(count_rule(r.findings, "determinism-wall-clock"), 1);
  EXPECT_EQ(count_rule(r.findings, "lint-directive"), 2);
  EXPECT_TRUE(has_at(r.findings, "lint-directive", 2));
  EXPECT_TRUE(has_at(r.findings, "lint-directive", 3));
}

// ------------------------------------------------------------------ baseline

TEST(LintBaseline, RenderParseRoundTripAbsolvesFindings) {
  const Config c = fixture_config();
  RunResult r = run_one(c, "det/fix.cpp",
                        "void f() {\n"
                        "  auto a = Clock::now();\n"
                        "  std::random_device rd;\n"
                        "  (void)a; (void)rd;\n"
                        "}\n");
  ASSERT_EQ(r.findings.size(), 2u);
  const std::string text = Baseline::render(r.findings);
  std::string error;
  const auto baseline = Baseline::parse(text, error);
  ASSERT_TRUE(baseline.has_value()) << error;
  std::vector<Finding> absolved;
  apply_baseline(*baseline, r, absolved);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(absolved.size(), 2u);
}

TEST(LintBaseline, EntriesHaveMultisetBudget) {
  const Config c = fixture_config();
  // The same statement twice: identical (rule, path, excerpt) keys.
  RunResult r = run_one(c, "det/fix.cpp",
                        "void f(Log& log) {\n"
                        "  log.stamp(Clock::now());\n"
                        "  log.stamp(Clock::now());\n"
                        "}\n");
  ASSERT_EQ(r.findings.size(), 2u);
  ASSERT_EQ(Baseline::key(r.findings[0]), Baseline::key(r.findings[1]))
      << "fixture must produce identical keys";
  Baseline one;
  one.entries[Baseline::key(r.findings[0])] = 1;
  std::vector<Finding> absolved;
  apply_baseline(one, r, absolved);
  EXPECT_EQ(absolved.size(), 1u);
  EXPECT_EQ(r.findings.size(), 1u);
}

TEST(LintBaseline, EditedLineResurfacesTheFinding) {
  const Config c = fixture_config();
  RunResult before = run_one(c, "det/fix.cpp",
                             "void f() {\n"
                             "  auto a = Clock::now();\n"
                             "  (void)a;\n"
                             "}\n");
  ASSERT_EQ(before.findings.size(), 1u);
  const std::string text = Baseline::render(before.findings);
  std::string error;
  const auto baseline = Baseline::parse(text, error);
  ASSERT_TRUE(baseline.has_value()) << error;
  // The flagged line changes (new variable name): the excerpt-keyed
  // baseline entry must no longer absolve it.
  RunResult after = run_one(c, "det/fix.cpp",
                            "void f() {\n"
                            "  auto when = Clock::now();\n"
                            "  (void)when;\n"
                            "}\n");
  ASSERT_EQ(after.findings.size(), 1u);
  std::vector<Finding> absolved;
  apply_baseline(*baseline, after, absolved);
  EXPECT_TRUE(absolved.empty());
  EXPECT_EQ(after.findings.size(), 1u);
}

TEST(LintBaseline, MalformedLinesAreRejectedWithLineNumbers) {
  std::string error;
  EXPECT_FALSE(Baseline::parse("# header\nnot-a-valid-line\n", error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(
      Baseline::parse("no-such-rule|some/path.cpp|excerpt\n", error)
          .has_value());
  EXPECT_NE(error.find("unknown rule"), std::string::npos) << error;
}

// ---------------------------------------------------------------- exit codes
//
// The spawned binary's contract (lint_exit), exercised against throwaway
// fixture trees. ctest hands the binary path in via XCP_LINT_BIN.

#if !defined(_WIN32)

namespace {

int run_cli(const std::string& args) {
  const char* bin = std::getenv("XCP_LINT_BIN");
  const std::string cmd = std::string(bin != nullptr ? bin : "./xcp_lint") +
                          " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/// A throwaway fixture tree under the system temp dir, removed on exit.
struct TempTree {
  fs::path root;
  TempTree() {
    root = fs::temp_directory_path() /
           ("xcp_lint_fixture_" + std::to_string(::getpid()));
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~TempTree() { fs::remove_all(root); }
  void write(const std::string& rel, const std::string& text) const {
    const fs::path p = root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << text;
  }
};

}  // namespace

TEST(LintCli, ExitCodeTaxonomy) {
  TempTree tree;
  // src/sim/ is in the default determinism scope, so this tree has
  // exactly one finding.
  tree.write("src/sim/bad.cpp",
             "#include <chrono>\n"
             "void f() {\n"
             "  auto t = std::chrono::steady_clock::now();\n"
             "  (void)t;\n"
             "}\n");
  const std::string root_arg = "--root " + tree.root.string();

  EXPECT_EQ(run_cli("--list-rules"), lint_exit::kClean);
  EXPECT_EQ(run_cli(root_arg), lint_exit::kFindings);
  EXPECT_EQ(run_cli("--no-such-flag"), lint_exit::kUsage);
  EXPECT_EQ(run_cli(root_arg + " --rules no-such-rule"), lint_exit::kUsage);
  EXPECT_EQ(run_cli("--root " + (tree.root / "missing").string()),
            lint_exit::kIo);

  // A malformed baseline is its own failure mode, distinct from I/O.
  tree.write("broken_baseline.txt", "garbage without separators\n");
  EXPECT_EQ(run_cli(root_arg + " --baseline " +
                    (tree.root / "broken_baseline.txt").string()),
            lint_exit::kBaseline);
  EXPECT_EQ(run_cli(root_arg + " --baseline " +
                    (tree.root / "no_such_baseline.txt").string()),
            lint_exit::kIo);

  // --write-baseline captures the finding; a rerun against the written
  // baseline is clean, and an unrelated-rule restriction is too.
  const std::string bl = (tree.root / "bl.txt").string();
  EXPECT_EQ(run_cli(root_arg + " --write-baseline " + bl), lint_exit::kClean);
  EXPECT_EQ(run_cli(root_arg + " --baseline " + bl), lint_exit::kClean);
  EXPECT_EQ(run_cli(root_arg + " --rules determinism-random"),
            lint_exit::kClean);

  // Fixing the source makes the tree clean with no baseline at all.
  tree.write("src/sim/bad.cpp",
             "void f(Sim& sim) {\n"
             "  auto t = sim.now();\n"
             "  (void)t;\n"
             "}\n");
  EXPECT_EQ(run_cli(root_arg), lint_exit::kClean);
}

#endif  // !_WIN32
