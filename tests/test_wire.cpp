// Wire-format tests and fuzz harness (net/wire.hpp): every protocol
// message type must round-trip bit-exactly through serialize -> parse ->
// serialize, and every single-byte corruption and every truncation of a
// valid frame must either be rejected with net::WireError or parse to a
// valid message — never UB, never partial state (the asan-ubsan CI job
// runs this suite under both sanitizers).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "chain/transaction.hpp"
#include "consensus/messages.hpp"
#include "crypto/certificate.hpp"
#include "crypto/identity.hpp"
#include "net/wire.hpp"
#include "proto/bodies.hpp"

namespace xcp::net {
namespace {

using Bytes = std::vector<std::uint8_t>;

// ------------------------------------------------------------- fixtures

crypto::KeyRegistry& registry() {
  static crypto::KeyRegistry keys(0xfeedULL);
  return keys;
}

std::vector<sim::ProcessId> roster() {
  return {sim::ProcessId(21), sim::ProcessId(22), sim::ProcessId(23),
          sim::ProcessId(24)};
}

crypto::Certificate quorum_cert(bool commit) {
  auto members = roster();
  std::vector<crypto::Signature> sigs;
  const sim::ProcessId committee(3'000'013);
  const auto kind =
      commit ? crypto::CertKind::kCommit : crypto::CertKind::kAbort;
  crypto::Certificate chi =
      crypto::make_payment_cert(registry().signer_for(sim::ProcessId(2)), 13);
  // Assemble via the production helper so digests/embeds are the real thing.
  crypto::Certificate probe;
  probe.kind = kind;
  probe.deal_id = 13;
  probe.issuer = committee;
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {  // 3 of 4 sign
    sigs.push_back(registry().signer_for(members[i]).sign(probe.digest()));
  }
  return crypto::make_quorum_cert(kind, 13, committee, std::move(sigs),
                                  commit ? &chi : nullptr);
}

/// One message of every wire-serializable body type (and a body-less one),
/// with edge-flavoured field values.
std::vector<Message> corpus() {
  std::vector<Message> msgs;
  auto push = [&](MsgKind kind, BodyPtr body) {
    Message m;
    m.id = 0x0123456789abcdefULL;
    m.from = sim::ProcessId(7);
    m.to = sim::ProcessId(42);
    m.kind = kind;
    m.body = std::move(body);
    msgs.push_back(std::move(m));
  };

  push(kinds::claim, nullptr);  // pure-signal message, no body

  auto g = make_body<proto::PromiseG>();
  g->deal_id = ~0ULL;
  g->d = Duration::micros(-1);  // negative durations survive the codec
  g->amount = Amount(-42, Currency::btc());
  push(kinds::g, g);

  auto p = make_body<proto::PromiseP>();
  p->deal_id = 13;
  p->a = Duration::seconds(3600);
  p->amount = Amount(1'000'000, Currency::usd());
  push(kinds::p, p);

  auto money = make_body<proto::MoneyMsg>();
  money->deal_id = 13;
  money->receipt = 0xdeadbeefcafeULL;
  money->amount = Amount(5, Currency::generic());
  push(kinds::money, money);

  auto chi = make_body<proto::CertMsg>();
  chi->cert =
      crypto::make_payment_cert(registry().signer_for(sim::ProcessId(2)), 13);
  push(kinds::chi, chi);
  push(kinds::tm_chi, chi);

  auto report = make_body<consensus::ReportMsg>();
  report->statement = consensus::make_statement(
      registry().signer_for(sim::ProcessId(4)), "escrowed", 13, 77);
  push(kinds::tm_report, report);

  auto proposal = make_body<consensus::ProposalMsg>();
  proposal->instance = 13;
  proposal->round = 3;
  proposal->value = consensus::Value::kCommit;
  proposal->just.statements.push_back(consensus::make_statement(
      registry().signer_for(sim::ProcessId(4)), "escrowed", 13));
  proposal->just.statements.push_back(consensus::make_statement(
      registry().signer_for(sim::ProcessId(5)), "escrowed", 13));
  proposal->just.chi =
      crypto::make_payment_cert(registry().signer_for(sim::ProcessId(2)), 13);
  proposal->sig = registry().signer_for(sim::ProcessId(21)).sign(
      consensus::proposal_digest(13, 3, consensus::Value::kCommit));
  push(kinds::bft_proposal, proposal);

  auto vote = make_body<consensus::VoteMsg>();
  vote->instance = 13;
  vote->round = 0;
  vote->value = consensus::Value::kAbort;
  vote->phase = consensus::VoteMsg::Phase::kPrecommit;
  vote->sig = registry().signer_for(sim::ProcessId(22)).sign(0x1234);
  push(kinds::bft_vote, vote);

  auto nr = make_body<consensus::NewRoundMsg>();
  nr->instance = 13;
  nr->round = 5;
  nr->locked = consensus::Value::kCommit;
  nr->lock_round = 2;
  push(kinds::bft_newround, nr);

  auto nr2 = make_body<consensus::NewRoundMsg>();
  nr2->instance = 13;
  nr2->round = 1;
  nr2->lock_round = -1;  // unlocked: the -1 sentinel must survive
  push(kinds::bft_newround, nr2);

  auto decision = make_body<consensus::DecisionMsg>();
  decision->cert = quorum_cert(true);
  push(kinds::tm_cert, decision);

  auto decision_a = make_body<consensus::DecisionMsg>();
  decision_a->cert = quorum_cert(false);
  push(kinds::bft_decision, decision_a);

  auto tx = make_body<chain::TxMsg>();
  tx->tx = chain::make_signed_tx(registry().signer_for(sim::ProcessId(3)),
                                 "escrow_1", "deposit", 13, 500,
                                 quorum_cert(true));
  push(kinds::tx, tx);

  auto ev = make_body<chain::ChainEventMsg>();
  ev->contract = "escrow_1";
  ev->topic = "funded";
  ev->block_height = 991;
  ev->cert = quorum_cert(false);
  ev->detail = "deal 13 funded at height 991";
  push(kinds::chain_event, ev);

  return msgs;
}

WireContext roster_ctx(const std::vector<sim::ProcessId>& members) {
  WireContext ctx;
  ctx.roster = &members;
  return ctx;
}

// ------------------------------------------------------------ round trip

TEST(Wire, EveryMessageTypeRoundTripsBitExactly) {
  const auto members = roster();
  for (const WireContext& ctx :
       {WireContext{}, roster_ctx(members)}) {
    for (const Message& m : corpus()) {
      const Bytes a = serialize_message(m, ctx);
      const Message parsed = parse_message(a, ctx);
      EXPECT_EQ(parsed.id, m.id);
      EXPECT_EQ(parsed.from, m.from);
      EXPECT_EQ(parsed.to, m.to);
      EXPECT_EQ(parsed.kind, m.kind);
      EXPECT_EQ(parsed.body == nullptr, m.body == nullptr);
      const Bytes b = serialize_message(parsed, ctx);
      EXPECT_EQ(a, b) << "re-serialization diverged for kind "
                      << m.kind.str();
    }
  }
}

TEST(Wire, QuorumCertUsesBitmapWithRosterAndExplicitWithout) {
  const auto members = roster();
  const crypto::Certificate cert = quorum_cert(true);
  const Bytes with = serialize_certificate(cert, roster_ctx(members));
  const Bytes without = serialize_certificate(cert, WireContext{});
  // Bitmap form: 8-byte map + one 8-byte mac per signer beats 12 bytes per
  // signature once more than two sign; and both must round-trip.
  EXPECT_LT(with.size(), without.size());
  const crypto::Certificate c1 = parse_certificate(with, roster_ctx(members));
  const crypto::Certificate c2 = parse_certificate(without, WireContext{});
  for (const crypto::Certificate* c : {&c1, &c2}) {
    EXPECT_EQ(c->deal_id, cert.deal_id);
    EXPECT_EQ(c->quorum.size(), cert.quorum.size());
    EXPECT_TRUE(crypto::verify_quorum_cert(registry(), *c, members, 3));
  }
  // Bitmap form without the roster cannot be decoded.
  EXPECT_THROW(parse_certificate(with, WireContext{}), WireError);
}

TEST(Wire, BitmapRejectsBitsBeyondRoster) {
  const auto members = roster();
  const crypto::Certificate cert = quorum_cert(false);
  Bytes buf = serialize_certificate(cert, roster_ctx(members));
  // The participation bitmap is the u64 right after the quorum-mode byte;
  // find it by locating the mode byte (1) before the bitmap. Flip a high
  // bit: signer index 63 does not exist in a 4-member roster.
  // Layout after the 8-byte header: kind(1) deal(8) issuer(4) sig(12)
  // embed-flag(1) mode(1) bitmap(8).
  const std::size_t bitmap_at = 8 + 1 + 8 + 4 + 12 + 1 + 1;
  ASSERT_LT(bitmap_at + 7, buf.size());
  buf[bitmap_at + 7] |= 0x80;
  try {
    parse_certificate(buf, roster_ctx(members));
    FAIL() << "bitmap overflow not rejected";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("participation bitmap"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ rejection

TEST(Wire, RejectsVersionBumpMagicAndUnknownTags) {
  Message m = corpus()[1];
  Bytes buf = serialize_message(m);

  {  // version bumped past what this build speaks
    Bytes b = buf;
    b[4] = 0xff;
    b[5] = 0xff;
    try {
      parse_message(b);
      FAIL() << "version bump not rejected";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported version"),
                std::string::npos);
      EXPECT_EQ(e.offset(), 4u);
    }
  }
  {  // bad magic
    Bytes b = buf;
    b[0] ^= 0x5a;
    EXPECT_THROW(parse_message(b), WireError);
  }
  {  // unknown kind tag
    Bytes b = buf;
    b[8] = 200;
    try {
      parse_message(b);
      FAIL() << "unknown kind not rejected";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown kind tag"),
                std::string::npos);
    }
  }
  {  // unknown body tag
    Bytes b = buf;
    b[9] = 99;
    EXPECT_THROW(parse_message(b), WireError);
  }
  {  // nonzero flags
    Bytes b = buf;
    b[6] = 1;
    EXPECT_THROW(parse_message(b), WireError);
  }
  {  // trailing bytes
    Bytes b = buf;
    b.push_back(0);
    try {
      parse_message(b);
      FAIL() << "trailing bytes not rejected";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
    }
  }
  {  // control frame where a message is expected
    ControlFrame hb;
    hb.kind = WireKind::kHeartbeat;
    hb.a = 7;
    Bytes b;
    serialize_control(hb, b);
    EXPECT_THROW(parse_message(b), WireError);
    const ParsedFrame pf = parse_frame(b.data(), b.size());
    ASSERT_TRUE(pf.is_control());
    EXPECT_EQ(pf.control.a, 7u);
  }
}

TEST(Wire, ControlFramesRoundTripThroughParseControl) {
  // serialize_control's dedicated inverse: every control kind round-trips
  // with both payload words intact, without going through ParsedFrame.
  for (const WireKind kind : {WireKind::kHello, WireKind::kHeartbeat}) {
    ControlFrame f;
    f.kind = kind;
    f.a = 0x0123456789abcdefull;
    f.b = 0xfedcba9876543210ull;
    Bytes b;
    serialize_control(f, b);
    const ControlFrame got = parse_control(b);
    EXPECT_EQ(got.kind, f.kind);
    EXPECT_EQ(got.a, f.a);
    EXPECT_EQ(got.b, f.b);
  }
}

TEST(Wire, ParseControlRejectsMessagesAndTruncation) {
  {  // a protocol message is not a control frame
    const Bytes b = serialize_message(corpus()[0]);
    EXPECT_THROW(parse_control(b), WireError);
  }
  ControlFrame hb;
  hb.kind = WireKind::kHeartbeat;
  hb.a = 7;
  hb.b = 9;
  Bytes b;
  serialize_control(hb, b);
  {  // every truncation rejects
    for (std::size_t n = 0; n < b.size(); ++n) {
      Bytes cut(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
      EXPECT_THROW(parse_control(cut), WireError) << "length " << n;
    }
  }
  {  // trailing bytes reject
    Bytes padded = b;
    padded.push_back(0);
    EXPECT_THROW(parse_control(padded), WireError);
  }
}

TEST(Wire, ErrorsCarryByteOffsetInMessageAndAccessor) {
  // The diagnostic contract shared with exp::WireError: the offset of the
  // failure appears both in what() and via offset().
  Message m = corpus()[1];
  Bytes buf = serialize_message(m);
  buf.resize(buf.size() - 3);  // truncate mid-body
  try {
    parse_message(buf);
    FAIL() << "truncation not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(e.offset())), std::string::npos)
        << what << " vs offset " << e.offset();
    EXPECT_GT(e.offset(), 0u);
  }
}

// ----------------------------------------------------------------- fuzz

TEST(Wire, EveryTruncationRejectsCleanly) {
  const auto members = roster();
  const WireContext ctx = roster_ctx(members);
  for (const Message& m : corpus()) {
    const Bytes buf = serialize_message(m, ctx);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      Bytes b(buf.begin(), buf.begin() + cut);
      // Strict-prefix truncation can never parse: either a field read runs
      // short or the trailing-bytes check fires. Anything but WireError
      // (UB, partial state, other exception types) fails the test.
      EXPECT_THROW(parse_message(b, ctx), WireError)
          << m.kind.str() << " truncated to " << cut << " bytes";
    }
  }
}

TEST(Wire, EverySingleByteCorruptionRejectsOrParsesCleanly) {
  const auto members = roster();
  const WireContext ctx = roster_ctx(members);
  // A corrupted byte may still yield a structurally valid message (e.g. a
  // flipped bit inside a mac); the invariant is no UB and no partial
  // state — it either throws WireError or returns a message that
  // re-serializes within the same context.
  for (const Message& m : corpus()) {
    const Bytes buf = serialize_message(m, ctx);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      for (std::uint8_t mask : {0x01, 0x80, 0xff}) {
        Bytes b = buf;
        b[i] ^= mask;
        try {
          const Message parsed = parse_message(b, ctx);
          const Bytes re = serialize_message(parsed, ctx);
          EXPECT_FALSE(re.empty());
        } catch (const WireError&) {
          // clean rejection
        }
      }
    }
  }
}

TEST(Wire, RandomGarbageNeverParsesAsUB) {
  // Deterministic xorshift garbage: every outcome must be WireError or a
  // valid message (with 0x4d504358 magic required, almost always the
  // former).
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = next() % 256;
    Bytes b(len);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(next());
    try {
      (void)parse_message(b);
    } catch (const WireError&) {
    }
  }
}

// ---------------------------------------------------------------- framing

TEST(Wire, StreamFramingReassemblesAcrossArbitrarySplits) {
  const auto members = roster();
  const WireContext ctx = roster_ctx(members);
  const auto msgs = corpus();
  Bytes stream;
  for (const Message& m : msgs) {
    const Bytes payload = serialize_message(m, ctx);
    append_stream_frame(stream, payload.data(), payload.size());
  }
  // Feed the stream one byte at a time; the frame count and contents must
  // be independent of the split points.
  Bytes rx;
  std::size_t parsed = 0;
  for (std::uint8_t byte : stream) {
    rx.push_back(byte);
    Bytes frame;
    while (extract_stream_frame(rx, frame)) {
      const Message m = parse_message(frame, ctx);
      EXPECT_EQ(m.kind, msgs[parsed].kind);
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, msgs.size());
  EXPECT_TRUE(rx.empty());
}

TEST(Wire, StreamFramingRejectsOversizeAnnouncement) {
  Bytes rx = {0xff, 0xff, 0xff, 0x7f};  // announces a ~2 GiB frame
  Bytes frame;
  EXPECT_THROW(extract_stream_frame(rx, frame), WireError);
}

}  // namespace
}  // namespace xcp::net
