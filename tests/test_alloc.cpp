// Proves the event core is allocation-free in steady state. This TU
// overrides the global allocation functions with counting versions; the
// tests warm the relevant pools/slabs up, then assert that push/pop cycles
// with <=64-byte captures, timer churn, and pooled message bodies perform
// zero heap allocations.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/message.hpp"
#include "net/msg_kind.hpp"
#include "proto/bodies.hpp"
#include "props/checkers.hpp"
#include "props/label.hpp"
#include "props/online.hpp"
#include "props/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/stop_token.hpp"
#include "support/pool.hpp"

namespace {
std::uint64_t g_allocations = 0;
}

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xcp {
namespace {

TEST(ZeroAlloc, EventQueuePushPopSteadyState) {
  sim::EventQueue q;
  std::uint64_t sink = 0;

  // Warm-up: grow the slab and heap vector to their high-water mark.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.push(TimePoint::micros(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    while (!q.empty()) q.pop().fn();
  }

  // Steady state: pushes with <=64-byte captures must not touch the heap.
  const std::uint64_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.push(TimePoint::micros(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    while (!q.empty()) q.pop().fn();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_GT(sink, 0u);
}

TEST(ZeroAlloc, EventQueueCancelSteadyState) {
  sim::EventQueue q;
  sim::EventId ids[128] = {};

  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 128; ++i) ids[i] = q.push(TimePoint::micros(i), [] {});
    for (int i = 0; i < 128; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().fn();
  }

  const std::uint64_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 128; ++i) ids[i] = q.push(TimePoint::micros(i), [] {});
    for (int i = 0; i < 128; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().fn();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
}

TEST(ZeroAlloc, OversizedCapturesDoAllocate) {
  // Sanity check that the counter actually observes the spill path.
  sim::EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > inline capacity
  const std::uint64_t before = g_allocations;
  q.push(TimePoint::micros(1), [big] { (void)big; });
  EXPECT_GT(g_allocations, before);
  q.pop().fn();
}

TEST(ZeroAlloc, PooledBodiesReuseStorage) {
  // Warm-up charges the size-class pool.
  for (int i = 0; i < 64; ++i) {
    auto b = net::make_body<proto::MoneyMsg>();
    b->deal_id = static_cast<std::uint64_t>(i);
  }

  const std::uint64_t before = g_allocations;
  for (int i = 0; i < 1000; ++i) {
    auto b = net::make_body<proto::MoneyMsg>();
    b->deal_id = static_cast<std::uint64_t>(i);
    net::BodyPtr erased = std::move(b);  // the shape every send produces
    erased.reset();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
}

TEST(ZeroAlloc, InternedKindLookupIsAllocationFree) {
  const net::MsgKind first = net::kind("alloc-test-kind");  // interns (may allocate)
  const std::uint64_t before = g_allocations;
  net::MsgKind k;
  for (int i = 0; i < 1000; ++i) k = net::kind("alloc-test-kind");
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_EQ(k, first);
}

// ------------------------------------------------- trace pipeline proofs

namespace {

/// Records a committee-run-shaped stream: sends/delivers (interned message
/// kinds), escrow movements with amounts, cert issuance, one decide, and
/// terminations. Enough events to cross several chunk boundaries.
void record_run_shape(props::TraceRecorder& t, int events) {
  using props::EventKind;
  // Shared id space with the MsgKind interner: a kind's wire value IS its
  // label id — no interner lookup at all.
  const props::Label kinds[] = {props::Label::from_wire(net::kinds::g.value()),
                                props::Label::from_wire(net::kinds::p.value()),
                                props::Label::from_wire(net::kinds::money.value()),
                                props::Label::from_wire(net::kinds::chi.value())};
  for (int i = 0; i < events; ++i) {
    props::TraceEvent e;
    e.at = TimePoint::micros(i);
    e.local_at = e.at;
    e.actor = sim::ProcessId(static_cast<std::uint32_t>(i % 7));
    e.peer = sim::ProcessId(static_cast<std::uint32_t>((i + 1) % 7));
    switch (i % 8) {
      case 0: case 1: case 2:
        e.kind = EventKind::kSend;
        e.label = kinds[i % 4];
        break;
      case 3: case 4:
        e.kind = EventKind::kDeliver;
        e.label = kinds[i % 4];
        break;
      case 5:
        e.kind = EventKind::kTransfer;
        e.amount = Amount(100, Currency::generic());
        break;
      case 6:
        e.kind = EventKind::kCertIssued;
        e.label = props::labels::chi;
        break;
      default:
        e.kind = EventKind::kTerminate;
        break;
    }
    t.record(e);
  }
  props::TraceEvent d;
  d.kind = EventKind::kDecide;
  d.label = props::labels::commit;
  t.record(d);
}

/// Runs the checker-style query matrix the property checkers issue.
std::size_t query_matrix(const props::TraceRecorder& t) {
  using props::EventKind;
  std::size_t sink = 0;
  for (std::size_t k = 0; k < props::kEventKindCount; ++k) {
    sink += t.count(static_cast<EventKind>(k));
  }
  for (std::uint32_t a = 0; a < 7; ++a) {
    sink += t.count(EventKind::kTransfer, sim::ProcessId(a));
    sink += (t.first(EventKind::kTerminate, sim::ProcessId(a)) != nullptr);
  }
  sink += t.count_label(EventKind::kSend, props::labels::chi);
  for (const props::TraceEvent* e : t.all(EventKind::kDecide)) {
    sink += (e->label == props::labels::commit);
  }
  return sink;
}

}  // namespace

TEST(ZeroAlloc, TraceRecordAndQuerySteadyState) {
  props::TraceRecorder t;
  // Warm-up: grow event and index chunks to their high-water mark.
  record_run_shape(t, 600);
  std::size_t expect = query_matrix(t);
  t.clear();

  const std::uint64_t before = g_allocations;
  std::size_t sink = 0;
  for (int round = 0; round < 10; ++round) {
    record_run_shape(t, 600);  // recording: pure bump-pointer stores
    sink += query_matrix(t);   // checking: indexed lookups, range walks
    t.clear();                 // chunks retained for the next round
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_EQ(sink, 10 * expect);
}

TEST(ZeroAlloc, FullRecordCheckCycleSteadyState) {
  // A full record→check cycle over a RunRecord: refill the trace, then
  // evaluate real checkers (certificate consistency over the kDecide index,
  // weak liveness over the kAbortRequested count). The record itself is
  // built once; the measured loop must not touch the heap.
  proto::RunRecord r;
  r.protocol = "synthetic";
  r.spec = proto::DealSpec::uniform(1, 2, 100, 5);
  for (std::uint32_t i = 0; i <= 2; ++i) {
    r.parts.customers.push_back(sim::ProcessId(i));
  }
  for (std::uint32_t i = 3; i <= 4; ++i) {
    r.parts.escrows.push_back(sim::ProcessId(i));
  }
  for (std::uint32_t i = 0; i <= 4; ++i) {
    proto::ParticipantOutcome p;
    p.pid = sim::ProcessId(i);
    p.role = i <= 2 ? "customer" : "escrow";
    p.is_escrow = i >= 3;
    p.index = i <= 2 ? static_cast<int>(i) : static_cast<int>(i - 3);
    p.terminated = true;
    r.participants.push_back(std::move(p));
  }
  r.participants[2].final_holdings = {Amount(100, Currency::generic())};
  r.stats.drained = true;

  const props::CheckOptions opts;
  // Warm-up round (also warms the trace chunks).
  record_run_shape(r.trace, 600);
  ASSERT_TRUE(props::check_certificate_consistency(r).holds);
  ASSERT_TRUE(props::check_weak_liveness(r, opts).holds);
  r.trace.clear();

  const std::uint64_t before = g_allocations;
  bool ok = true;
  for (int round = 0; round < 10; ++round) {
    record_run_shape(r.trace, 600);
    ok = ok && props::check_certificate_consistency(r).holds;
    ok = ok && props::check_weak_liveness(r, opts).holds;
    r.trace.clear();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_TRUE(ok);
}

TEST(ZeroAlloc, OnlineMonitorOnEventSteadyState) {
  // The online-checking hot path: every record() also feeds the attached
  // OnlineMonitor (kind-indexed dispatch, interned-label compares, plain
  // counters). Setup allocates (the cast list); the observed stream must
  // not. One monitor per round, as runners use one per seed — monitor
  // construction is part of the measured loop only through its fixed-size
  // members, so warm one first to charge the cast vector's allocation
  // pattern, then require the recording rounds stay clean.
  props::OnlineMonitor::Config cfg;
  cfg.deal_id = 1;
  cfg.bob = sim::ProcessId(2);
  cfg.last_hop = Amount(100, Currency::generic());
  for (std::uint32_t i = 0; i <= 4; ++i) cfg.cast.push_back(sim::ProcessId(i));

  props::TraceRecorder t;
  {
    // Warm-up: chunks to high-water mark, one full observed stream.
    props::OnlineMonitor monitor(cfg);
    t.set_sink(&monitor);
    record_run_shape(t, 600);
    t.set_sink(nullptr);
    t.clear();
  }

  props::OnlineMonitor monitor(cfg);  // constructed before the measurement
  sim::StopToken token;
  monitor.arm_stop(&token);
  t.set_sink(&monitor);
  const std::uint64_t before = g_allocations;
  record_run_shape(t, 600);  // every record() dispatches through the sink
  const std::uint64_t after = g_allocations;
  t.set_sink(nullptr);
  EXPECT_EQ(after, before);
  // The stream terminates actors 0..6, so the 5-member cast quiesced and
  // the verdict telemetry is live — proving the measured path did the work.
  EXPECT_TRUE(monitor.quiescent());
  EXPECT_TRUE(token.stop_requested);
  EXPECT_EQ(monitor.outcome().events_seen, 601u);
}

}  // namespace
}  // namespace xcp
