// Proves the event core is allocation-free in steady state. This TU
// overrides the global allocation functions with counting versions; the
// tests warm the relevant pools/slabs up, then assert that push/pop cycles
// with <=64-byte captures, timer churn, and pooled message bodies perform
// zero heap allocations.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/message.hpp"
#include "net/msg_kind.hpp"
#include "proto/bodies.hpp"
#include "sim/event_queue.hpp"
#include "support/pool.hpp"

namespace {
std::uint64_t g_allocations = 0;
}

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xcp {
namespace {

TEST(ZeroAlloc, EventQueuePushPopSteadyState) {
  sim::EventQueue q;
  std::uint64_t sink = 0;

  // Warm-up: grow the slab and heap vector to their high-water mark.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.push(TimePoint::micros(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    while (!q.empty()) q.pop().fn();
  }

  // Steady state: pushes with <=64-byte captures must not touch the heap.
  const std::uint64_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 256; ++i) {
      q.push(TimePoint::micros(i), [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    while (!q.empty()) q.pop().fn();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_GT(sink, 0u);
}

TEST(ZeroAlloc, EventQueueCancelSteadyState) {
  sim::EventQueue q;
  sim::EventId ids[128] = {};

  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 128; ++i) ids[i] = q.push(TimePoint::micros(i), [] {});
    for (int i = 0; i < 128; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().fn();
  }

  const std::uint64_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 128; ++i) ids[i] = q.push(TimePoint::micros(i), [] {});
    for (int i = 0; i < 128; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.pop().fn();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
}

TEST(ZeroAlloc, OversizedCapturesDoAllocate) {
  // Sanity check that the counter actually observes the spill path.
  sim::EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > inline capacity
  const std::uint64_t before = g_allocations;
  q.push(TimePoint::micros(1), [big] { (void)big; });
  EXPECT_GT(g_allocations, before);
  q.pop().fn();
}

TEST(ZeroAlloc, PooledBodiesReuseStorage) {
  // Warm-up charges the size-class pool.
  for (int i = 0; i < 64; ++i) {
    auto b = net::make_body<proto::MoneyMsg>();
    b->deal_id = static_cast<std::uint64_t>(i);
  }

  const std::uint64_t before = g_allocations;
  for (int i = 0; i < 1000; ++i) {
    auto b = net::make_body<proto::MoneyMsg>();
    b->deal_id = static_cast<std::uint64_t>(i);
    net::BodyPtr erased = std::move(b);  // the shape every send produces
    erased.reset();
  }
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
}

TEST(ZeroAlloc, InternedKindLookupIsAllocationFree) {
  const net::MsgKind first = net::kind("alloc-test-kind");  // interns (may allocate)
  const std::uint64_t before = g_allocations;
  net::MsgKind k;
  for (int i = 0; i < 1000; ++i) k = net::kind("alloc-test-kind");
  const std::uint64_t after = g_allocations;
  EXPECT_EQ(after, before);
  EXPECT_EQ(k, first);
}

}  // namespace
}  // namespace xcp
