// Unit tests for the simulated blockchain: transaction authentication,
// block sealing, contract execution and event broadcast.

#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace xcp::chain {
namespace {

/// A counter contract: "inc" adds arg; "emit" publishes the current total.
class CounterContract final : public Contract {
 public:
  const std::string& name() const override { return name_; }
  Status apply(const Transaction& tx, ChainContext& ctx) override {
    if (tx.op == "inc") {
      total_ += tx.arg;
      return Status::ok();
    }
    if (tx.op == "emit") {
      ctx.emit(name_, "total", std::nullopt, std::to_string(total_));
      return Status::ok();
    }
    return Status::error("unknown op");
  }
  std::uint64_t total() const { return total_; }

 private:
  std::string name_ = "counter";
  std::uint64_t total_ = 0;
};

class Client final : public net::Actor {
 public:
  std::vector<std::string> events;
  void on_message(const net::Message& m) override {
    if (m.kind != "chain_event") return;
    if (const auto* e = m.body_as<ChainEventMsg>()) {
      events.push_back(e->topic + "=" + e->detail);
    }
  }
  void submit(sim::ProcessId chain, Transaction tx) {
    auto body = std::make_shared<TxMsg>();
    body->tx = std::move(tx);
    send(chain, "tx", body);
  }
};

struct Rig {
  Rig() {
    client_ptr = &sim.spawn<Client>("client");
    chain_ptr = &sim.spawn<Blockchain>("chain", Duration::millis(100), keys);
    net.attach(*client_ptr);
    net.attach(*chain_ptr);
    auto contract = std::make_unique<CounterContract>();
    counter = contract.get();
    chain_ptr->register_contract(std::move(contract));
    chain_ptr->subscribe(client_ptr->id());
  }
  sim::Simulator sim{55};
  crypto::KeyRegistry keys{55};
  net::Network net{sim, std::make_unique<net::SynchronousModel>(
                            Duration::millis(1), Duration::millis(5))};
  Client* client_ptr;
  Blockchain* chain_ptr;
  CounterContract* counter;
};

TEST(Transaction, SignAndVerify) {
  crypto::KeyRegistry keys(1);
  const auto signer = keys.signer_for(sim::ProcessId(3));
  const Transaction tx = make_signed_tx(signer, "c", "op", 1, 2);
  EXPECT_TRUE(verify_tx(keys, tx));
  Transaction tampered = tx;
  tampered.arg = 99;
  EXPECT_FALSE(verify_tx(keys, tampered));
  Transaction wrong_sender = tx;
  wrong_sender.sender = sim::ProcessId(4);
  EXPECT_FALSE(verify_tx(keys, wrong_sender));
}

TEST(Blockchain, AppliesValidTransactionsInBlocks) {
  Rig rig;
  const auto signer = rig.keys.signer_for(rig.client_ptr->id());
  rig.sim.schedule_at(TimePoint::origin(), [&] {
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "counter", "inc", 5));
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "counter", "inc", 7));
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "counter", "emit"));
  });
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(400),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();
  EXPECT_EQ(rig.counter->total(), 12u);
  ASSERT_EQ(rig.client_ptr->events.size(), 1u);
  EXPECT_EQ(rig.client_ptr->events[0], "total=12");
  EXPECT_EQ(rig.chain_ptr->stats().txs_accepted, 3u);
}

TEST(Blockchain, RejectsBadSignaturesAndSpoofedSenders) {
  Rig rig;
  // A signer for a *different* identity: the network sender (client) won't
  // match the transaction's claimed sender.
  const auto other = rig.keys.signer_for(sim::ProcessId(42));
  rig.sim.schedule_at(TimePoint::origin(), [&] {
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(other, "counter", "inc", 5));
    // Tampered payload with a real signature.
    auto tx = make_signed_tx(rig.keys.signer_for(rig.client_ptr->id()),
                             "counter", "inc", 5);
    tx.arg = 500;
    rig.client_ptr->submit(rig.chain_ptr->id(), tx);
  });
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();
  EXPECT_EQ(rig.counter->total(), 0u);
  EXPECT_EQ(rig.chain_ptr->stats().txs_rejected_sig, 2u);
}

TEST(Blockchain, RejectedApplyCountsAndContinues) {
  Rig rig;
  const auto signer = rig.keys.signer_for(rig.client_ptr->id());
  rig.sim.schedule_at(TimePoint::origin(), [&] {
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "counter", "nope"));
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "nosuch", "inc", 1));
    rig.client_ptr->submit(rig.chain_ptr->id(),
                           make_signed_tx(signer, "counter", "inc", 3));
  });
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();
  EXPECT_EQ(rig.counter->total(), 3u);
  EXPECT_EQ(rig.chain_ptr->stats().txs_rejected_apply, 2u);
}

TEST(Blockchain, BlocksChainByParentHash) {
  Rig rig;
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(450),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();
  const auto& blocks = rig.chain_ptr->blocks();
  ASSERT_GE(blocks.size(), 3u);
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].parent_hash, blocks[i - 1].hash);
    EXPECT_EQ(blocks[i].height, blocks[i - 1].height + 1);
    EXPECT_GE(blocks[i].sealed_at, blocks[i - 1].sealed_at);
  }
}

TEST(Blockchain, DuplicateContractNameRejected) {
  Rig rig;
  EXPECT_THROW(rig.chain_ptr->register_contract(
                   std::make_unique<CounterContract>()),
               std::logic_error);
}

}  // namespace
}  // namespace xcp::chain

namespace xcp::chain {
namespace {

TEST(InclusionProof, IssueAndVerify) {
  Rig rig;
  const auto signer = rig.keys.signer_for(rig.client_ptr->id());
  const auto tx = make_signed_tx(signer, "counter", "inc", 5);
  rig.sim.schedule_at(TimePoint::origin(),
                      [&] { rig.client_ptr->submit(rig.chain_ptr->id(), tx); });
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();

  const auto proof = rig.chain_ptr->prove_inclusion(tx.digest());
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(verify_inclusion(rig.keys, rig.chain_ptr->id(), *proof));
  EXPECT_GE(proof->height, 1u);

  // Unknown transactions have no proof.
  EXPECT_FALSE(rig.chain_ptr->prove_inclusion(0xdeadbeef).has_value());
}

TEST(InclusionProof, TamperingOrWrongChainRejected) {
  Rig rig;
  const auto signer = rig.keys.signer_for(rig.client_ptr->id());
  const auto tx = make_signed_tx(signer, "counter", "inc", 5);
  rig.sim.schedule_at(TimePoint::origin(),
                      [&] { rig.client_ptr->submit(rig.chain_ptr->id(), tx); });
  rig.sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                      [&] { rig.chain_ptr->stop(); });
  rig.sim.run();
  auto proof = rig.chain_ptr->prove_inclusion(tx.digest());
  ASSERT_TRUE(proof.has_value());

  InclusionProof tampered = *proof;
  tampered.height += 1;  // claim a different position
  EXPECT_FALSE(verify_inclusion(rig.keys, rig.chain_ptr->id(), tampered));

  // Verifying against a different chain identity fails.
  EXPECT_FALSE(verify_inclusion(rig.keys, sim::ProcessId(777), *proof));

  // A forged signature fails.
  InclusionProof forged = *proof;
  forged.sig.mac ^= 1;
  EXPECT_FALSE(verify_inclusion(rig.keys, rig.chain_ptr->id(), forged));
}

}  // namespace
}  // namespace xcp::chain
