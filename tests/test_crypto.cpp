// Unit tests for the simulated-authentication layer: signatures,
// certificates and quorum certificates.

#include <gtest/gtest.h>

#include "crypto/certificate.hpp"
#include "crypto/identity.hpp"
#include "crypto/signature.hpp"

namespace xcp::crypto {
namespace {

sim::ProcessId pid(std::uint32_t v) { return sim::ProcessId(v); }

TEST(Identity, SignAndVerifyRoundTrip) {
  KeyRegistry reg(1);
  const Signer alice = reg.signer_for(pid(1));
  const Signature sig = alice.sign(0xabcdefULL);
  EXPECT_TRUE(reg.verify(sig, 0xabcdefULL));
  EXPECT_FALSE(reg.verify(sig, 0xabcdeeULL));  // different message
}

TEST(Identity, SignaturesAreSignerSpecific) {
  KeyRegistry reg(1);
  const Signer alice = reg.signer_for(pid(1));
  const Signer bob = reg.signer_for(pid(2));
  Signature forged = alice.sign(42);
  forged.signer = bob.id();  // claim it came from bob
  EXPECT_FALSE(reg.verify(forged, 42));
}

TEST(Identity, UnknownSignerRejected) {
  KeyRegistry reg(1);
  Signature s{pid(99), 12345};
  EXPECT_FALSE(reg.verify(s, 0));
}

TEST(Identity, StableSignerForSameProcess) {
  KeyRegistry reg(7);
  const Signature a = reg.signer_for(pid(3)).sign(9);
  const Signature b = reg.signer_for(pid(3)).sign(9);
  EXPECT_EQ(a, b);
}

TEST(StatementDigest, DistinguishesAllFields) {
  const auto base = statement_digest("k", 1, pid(2), 3);
  EXPECT_NE(base, statement_digest("x", 1, pid(2), 3));
  EXPECT_NE(base, statement_digest("k", 9, pid(2), 3));
  EXPECT_NE(base, statement_digest("k", 1, pid(9), 3));
  EXPECT_NE(base, statement_digest("k", 1, pid(2), 9));
  EXPECT_EQ(base, statement_digest("k", 1, pid(2), 3));
}

TEST(Certificate, PaymentCertVerifies) {
  KeyRegistry reg(2);
  const Signer bob = reg.signer_for(pid(10));
  const Certificate chi = make_payment_cert(bob, /*deal_id=*/5);
  EXPECT_TRUE(verify_cert(reg, chi));
  EXPECT_EQ(chi.kind, CertKind::kPayment);
  EXPECT_EQ(chi.deal_id, 5u);
}

TEST(Certificate, WrongDealOrIssuerFails) {
  KeyRegistry reg(2);
  const Signer bob = reg.signer_for(pid(10));
  Certificate chi = make_payment_cert(bob, 5);
  chi.deal_id = 6;  // replay onto another deal
  EXPECT_FALSE(verify_cert(reg, chi));

  Certificate chi2 = make_payment_cert(bob, 5);
  chi2.issuer = pid(11);
  EXPECT_FALSE(verify_cert(reg, chi2));
}

TEST(Certificate, ForgedMacFails) {
  KeyRegistry reg(2);
  Certificate chi = make_payment_cert(reg.signer_for(pid(10)), 5);
  chi.signature.mac ^= 1;
  EXPECT_FALSE(verify_cert(reg, chi));
}

TEST(Certificate, CommitEmbedsAndChecksChi) {
  KeyRegistry reg(3);
  const Signer bob = reg.signer_for(pid(10));
  const Signer tm = reg.signer_for(pid(20));
  const Certificate chi = make_payment_cert(bob, 7);
  const Certificate cc = make_commit_cert(tm, 7, chi);
  EXPECT_TRUE(verify_cert(reg, cc));

  // Tampering with the embedded chi invalidates the commit certificate.
  Certificate bad = cc;
  bad.embedded_payment_sig->mac ^= 1;
  EXPECT_FALSE(verify_cert(reg, bad));

  Certificate missing = cc;
  missing.embedded_payment_sig.reset();
  EXPECT_FALSE(verify_cert(reg, missing));
}

TEST(Certificate, AbortCertKindsAreNotInterchangeable) {
  KeyRegistry reg(3);
  const Signer tm = reg.signer_for(pid(20));
  Certificate abort_cert = make_abort_cert(tm, 7);
  EXPECT_TRUE(verify_cert(reg, abort_cert));
  // An abort signature cannot masquerade as a commit.
  abort_cert.kind = CertKind::kCommit;
  abort_cert.embedded_payment_sig = abort_cert.signature;
  abort_cert.embedded_payment_issuer = tm.id();
  EXPECT_FALSE(verify_cert(reg, abort_cert));
}

// --------------------------------------------------------- quorum certs

std::vector<sim::ProcessId> committee5() {
  return {pid(30), pid(31), pid(32), pid(33), pid(34)};
}

Certificate quorum_abort(KeyRegistry& reg, int signers,
                         sim::ProcessId committee_id, std::uint64_t deal) {
  Certificate shape;
  shape.kind = CertKind::kAbort;
  shape.deal_id = deal;
  shape.issuer = committee_id;
  std::vector<Signature> sigs;
  for (int k = 0; k < signers; ++k) {
    sigs.push_back(reg.signer_for(committee5()[static_cast<std::size_t>(k)])
                       .sign(shape.digest()));
  }
  return make_quorum_cert(CertKind::kAbort, deal, committee_id, std::move(sigs));
}

TEST(QuorumCert, ThresholdMet) {
  KeyRegistry reg(4);
  const sim::ProcessId cid = pid(500);
  const Certificate cert = quorum_abort(reg, 3, cid, 9);
  EXPECT_TRUE(verify_quorum_cert(reg, cert, committee5(), 3));
  EXPECT_FALSE(verify_quorum_cert(reg, cert, committee5(), 4));
}

TEST(QuorumCert, DuplicateSignersDontCount) {
  KeyRegistry reg(4);
  const sim::ProcessId cid = pid(500);
  Certificate cert = quorum_abort(reg, 2, cid, 9);
  cert.quorum.push_back(cert.quorum.front());  // duplicate
  EXPECT_FALSE(verify_quorum_cert(reg, cert, committee5(), 3));
}

TEST(QuorumCert, NonMembersDontCount) {
  KeyRegistry reg(4);
  const sim::ProcessId cid = pid(500);
  Certificate cert = quorum_abort(reg, 2, cid, 9);
  // An outsider signs the right digest — still not a member.
  cert.quorum.push_back(reg.signer_for(pid(77)).sign(cert.digest()));
  EXPECT_FALSE(verify_quorum_cert(reg, cert, committee5(), 3));
}

TEST(QuorumCert, CommitQuorumRequiresEmbeddedChi) {
  KeyRegistry reg(5);
  const sim::ProcessId cid = pid(500);
  const Signer bob = reg.signer_for(pid(10));
  const Certificate chi = make_payment_cert(bob, 9);

  Certificate shape;
  shape.kind = CertKind::kCommit;
  shape.deal_id = 9;
  shape.issuer = cid;
  std::vector<Signature> sigs;
  for (int k = 0; k < 3; ++k) {
    sigs.push_back(reg.signer_for(committee5()[static_cast<std::size_t>(k)])
                       .sign(shape.digest()));
  }
  const Certificate with_chi =
      make_quorum_cert(CertKind::kCommit, 9, cid, sigs, &chi);
  EXPECT_TRUE(verify_quorum_cert(reg, with_chi, committee5(), 3));

  Certificate without = with_chi;
  without.embedded_payment_sig.reset();
  EXPECT_FALSE(verify_quorum_cert(reg, without, committee5(), 3));
}

}  // namespace
}  // namespace xcp::crypto
