// Tests of the timelock-schedule derivation (Sec. 4 parameters a_i, d_i),
// including randomized property checks of the window recurrence under drift.

#include <gtest/gtest.h>

#include "proto/timelock_schedule.hpp"
#include "support/rng.hpp"

namespace xcp::proto {
namespace {

TimingParams params(std::int64_t delta_ms, std::int64_t eps_ms, double rho,
                    std::int64_t slack_ms) {
  TimingParams p;
  p.delta_max = Duration::millis(delta_ms);
  p.processing = Duration::millis(eps_ms);
  p.rho = rho;
  p.slack = Duration::millis(slack_ms);
  return p;
}

TEST(TimelockSchedule, RecurrenceMatchesDerivation) {
  const auto p = params(100, 5, 0.0, 10);
  const auto s = TimelockSchedule::drift_compensated(4, p);
  const Duration step = p.step();
  EXPECT_EQ(s.true_window(3).count(), (2 * step + p.slack).count());
  for (int i = 2; i >= 0; --i) {
    EXPECT_EQ(s.true_window(i).count(),
              (s.true_window(i + 1) + 4 * step).count())
        << i;
  }
}

TEST(TimelockSchedule, WindowsDecreaseDownstream) {
  const auto s = TimelockSchedule::drift_compensated(6, params(50, 2, 1e-3, 5));
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_GT(s.a(i), s.a(i + 1)) << i;
    EXPECT_GT(s.d(i), s.a(i)) << i;  // refund promise covers the window
  }
}

TEST(TimelockSchedule, CompensationInflatesByRho) {
  const auto p = params(100, 5, 0.01, 10);
  const auto naive = TimelockSchedule::naive(3, p);
  const auto comp = TimelockSchedule::drift_compensated(3, p);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(naive.a(i).count(), naive.true_window(i).count());
    EXPECT_EQ(comp.a(i).count(), naive.a(i).scaled_up(1.01).count());
    EXPECT_GT(comp.a(i), naive.a(i));
  }
}

TEST(TimelockSchedule, ZeroSlackRejected) {
  EXPECT_THROW(TimelockSchedule::drift_compensated(2, params(100, 5, 0, 0)),
               std::logic_error);
}

TEST(TimelockSchedule, TerminationBoundsMonotoneEnough) {
  const auto s = TimelockSchedule::drift_compensated(5, params(100, 5, 1e-3, 10));
  // Every per-customer bound is below the overall horizon.
  for (int i = 0; i <= 5; ++i) {
    EXPECT_LE(s.customer_termination_bound(i).count(), s.horizon().count()) << i;
    EXPECT_GT(s.customer_termination_bound(i), Duration::zero());
  }
}

// The central schedule property (the essence of Thm 1's timing argument):
// for any drift rates within rho, the *local* window a_i, measured on the
// escrow's clock, always spans at least the true-time window A_i; and the
// worst-case chi round-trip fits inside A_i by construction of the
// recurrence.
class SchedulePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SchedulePropertyTest, LocalWindowCoversTrueWindowUnderAnyDrift) {
  const auto [n, rho] = GetParam();
  const auto p = params(100, 5, rho, 10);
  const auto s = TimelockSchedule::drift_compensated(n, p);
  Rng rng(static_cast<std::uint64_t>(n * 1000) ^
          static_cast<std::uint64_t>(rho * 1e9));
  for (int trial = 0; trial < 200; ++trial) {
    const double rate = rng.next_double(1.0 - rho, 1.0 + rho);
    for (int i = 0; i < n; ++i) {
      // A local duration a_i on a clock of this rate spans a true duration
      // a_i / rate; it must cover A_i.
      const double true_span =
          static_cast<double>(s.a(i).count()) / rate;
      EXPECT_GE(true_span + 1.0, static_cast<double>(s.true_window(i).count()))
          << "n=" << n << " rho=" << rho << " i=" << i << " rate=" << rate;
    }
  }
}

TEST_P(SchedulePropertyTest, NaiveScheduleFailsExactlyWhenClockFast) {
  const auto [n, rho] = GetParam();
  if (rho == 0.0) return;  // naive == compensated at zero drift
  const auto p = params(100, 5, rho, 10);
  const auto s = TimelockSchedule::naive(n, p);
  // With the fastest legal clock, the naive local window under-covers the
  // true window — the root cause of the drift ablation's failures.
  const double fast = 1.0 + rho;
  for (int i = 0; i < n; ++i) {
    const double true_span = static_cast<double>(s.a(i).count()) / fast;
    EXPECT_LT(true_span, static_cast<double>(s.true_window(i).count()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(0.0, 1e-4, 1e-3, 1e-2)));

}  // namespace
}  // namespace xcp::proto
