// Fault-tolerant shard dispatch tests: the supervised worker lifecycle
// (deadlines, retry with backoff, straggler hedging, in-process fallback)
// and the central invariant — under any injected fault schedule that
// leaves each shard one successful attempt, exp::distributed_sweep stays
// byte-identical to the single-process exp::run_matrix_cell. The fault
// modes come from tools/xcp_sweep_shard's deterministic --fault harness.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <pthread.h>
#include <sys/wait.h>
#endif

#include "exp/dispatch.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"

namespace xcp::exp {
namespace {

using Millis = std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

void expect_cells_identical(const MatrixCell& a, const MatrixCell& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.liveness_failures, b.liveness_failures);
  EXPECT_EQ(a.early_stops, b.early_stops);
  EXPECT_EQ(a.decided_at_total.count(), b.decided_at_total.count());
  EXPECT_EQ(a.events_total, b.events_total);
  ASSERT_EQ(a.example_violations.size(), b.example_violations.size());
  for (std::size_t i = 0; i < a.example_violations.size(); ++i) {
    EXPECT_EQ(a.example_violations[i], b.example_violations[i]) << i;
  }
  // Belt and braces: the defaulted operator== also covers any field a
  // future change adds without updating the explicit checks above.
  EXPECT_TRUE(a == b);
}

/// Worker binary, or empty when not deployed (tests then skip).
std::string worker_or_skip() { return default_worker_path(); }

/// Fast supervision clocks for tests: real backoff shape, toy magnitudes.
DispatchOptions quick_dispatch() {
  DispatchOptions d;
  d.shard_deadline = Millis(10'000);
  d.max_attempts = 3;
  d.backoff_base = Millis(2);
  d.backoff_cap = Millis(20);
  d.hedge_stragglers = false;  // keep attempt counts deterministic
  return d;
}

// A cell that produces violations (example strings included) so the
// byte-identity check exercises every accumulator field over the wire.
constexpr ProtocolKind kFaultProtocol = ProtocolKind::kInterledgerAtomic;
constexpr Regime kFaultRegime = Regime::kPartialSynchrony;
constexpr int kN = 2;
constexpr std::size_t kSeeds = 5;

// ------------------------------------------------- the fault differential

// The acceptance criterion: for K in {2, 3, 7} and every injected fault
// mode, a schedule that fails each shard's first attempt (and only it)
// must converge to a byte-identical cell via retries.
TEST(DispatchFaults, EveryFaultModeRecoversByteIdentically) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single =
      run_matrix_cell(kFaultProtocol, kFaultRegime, kN, kSeeds);

  struct ModeCase {
    const char* fault;
    bool first_attempt_fails;  // slow-start delays but still succeeds
    bool times_out;            // recovery is via deadline kill
  };
  const std::vector<ModeCase> modes{
      {"crash-before-write", true, false},
      {"crash-mid-blob", true, false},
      {"corrupt-blob", true, false},
      {"stall-forever", true, true},
      {"slow-start", false, false},
      {"wrong-meta", true, false},
      {"nonzero-exit", true, false},
  };

  for (const ModeCase& mode : modes) {
    for (const unsigned shards : {2u, 3u, 7u}) {
      SCOPED_TRACE(std::string(mode.fault) + " / K=" +
                   std::to_string(shards));
      DistributedOptions opts;
      opts.worker_path = worker;
      opts.dispatch = quick_dispatch();
      // Stalled attempt-1 workers should die quickly, not at 10 s.
      if (mode.times_out) opts.dispatch.shard_deadline = Millis(400);
      opts.dispatch.extra_worker_args = {
          "--fault", std::string(mode.fault) + "@1",
          "--fault-delay-ms", "50"};
      DispatchReport report;
      opts.report = &report;

      const MatrixCell swept = distributed_sweep(
          kFaultProtocol, kFaultRegime, kN, kSeeds, shards, 1, opts);
      expect_cells_identical(swept, single);

      EXPECT_EQ(report.shards, shards);
      EXPECT_EQ(report.fallbacks, 0u)
          << "recovery must come from retries, not the fallback ladder";
      if (mode.first_attempt_fails) {
        // Every shard's first attempt failed once and was re-issued.
        EXPECT_EQ(report.retries, shards);
        EXPECT_EQ(report.launches, 2u * shards);
      } else {
        EXPECT_EQ(report.retries, 0u);
        EXPECT_TRUE(report.clean());
      }
      if (mode.times_out) {
        EXPECT_EQ(report.timeouts, shards);
      }
    }
  }
}

// ------------------------------------------------------ deadline handling

TEST(DispatchFaults, StalledWorkerIsKilledWithinTheDeadline) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // Every process attempt stalls forever; only the deadline can free the
  // sweep, and only the in-process fallback can finish it.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.shard_deadline = Millis(250);
  opts.dispatch.max_attempts = 2;
  opts.dispatch.extra_worker_args = {"--fault", "stall-forever@99"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming,
                                            kN, 4);
  const Clock::time_point t0 = Clock::now();
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kTimeBounded,
                        Regime::kSynchronyConforming, kN, 4, 2, 1, opts);
  const Millis wall =
      std::chrono::duration_cast<Millis>(Clock::now() - t0);

  expect_cells_identical(swept, single);
  // 2 shards x 2 attempts, each killed at ~250 ms (attempts run
  // concurrently per wave): well under a few seconds end to end, and
  // emphatically not the indefinite hang the popen driver had.
  EXPECT_LT(wall.count(), 5'000);
  EXPECT_EQ(report.timeouts, 4u);
  EXPECT_EQ(report.fallbacks, 2u);
  for (const AttemptRecord& a : report.attempts) {
    if (a.outcome == AttemptRecord::Outcome::kTimeout) {
      EXPECT_LT(a.wall.count(), 2'000) << "kill did not happen promptly";
    }
  }
}

// --------------------------------------------------- retry exhaustion path

TEST(DispatchFaults, RetryExhaustionDegradesToInProcessWithFullReport) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.max_attempts = 2;
  opts.dispatch.extra_worker_args = {"--fault", "crash-before-write@99"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single =
      run_matrix_cell(kFaultProtocol, kFaultRegime, kN, kSeeds);
  const MatrixCell swept = distributed_sweep(kFaultProtocol, kFaultRegime,
                                             kN, kSeeds, 3, 1, opts);
  expect_cells_identical(swept, single);

  EXPECT_EQ(report.crashes, 6u);    // 3 shards x 2 attempts
  EXPECT_EQ(report.fallbacks, 3u);  // every shard degraded
  // The report records every attempt: per shard, two crashes then one
  // fallback, attempt ordinals 1..3 with no gaps.
  for (unsigned shard = 0; shard < 3; ++shard) {
    std::vector<AttemptRecord::Outcome> outcomes;
    std::vector<int> ordinals;
    for (const AttemptRecord& a : report.attempts) {
      if (a.shard != shard) continue;
      outcomes.push_back(a.outcome);
      ordinals.push_back(a.attempt);
    }
    ASSERT_EQ(outcomes.size(), 3u) << "shard " << shard;
    EXPECT_EQ(outcomes[0], AttemptRecord::Outcome::kCrashed);
    EXPECT_EQ(outcomes[1], AttemptRecord::Outcome::kCrashed);
    EXPECT_EQ(outcomes[2], AttemptRecord::Outcome::kFallback);
    EXPECT_EQ(ordinals, (std::vector<int>{1, 2, 3}));
  }
}

TEST(DispatchFaults, FallbackDisabledThrowsWithStderrAndExitCode) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.max_attempts = 2;
  opts.dispatch.fallback_in_process = false;
  opts.dispatch.extra_worker_args = {"--fault", "nonzero-exit@99"};
  DispatchReport report;
  opts.report = &report;

  try {
    (void)distributed_sweep(ProtocolKind::kTimeBounded,
                            Regime::kSynchronyConforming, kN, 4, 2, 1, opts);
    FAIL() << "expected DispatchError";
  } catch (const DispatchError& e) {
    const std::string what = e.what();
    // The error text is self-diagnosing: shard, exit code, and the
    // worker's own stderr all appear without consulting logs.
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
    EXPECT_NE(what.find("exit code 7"), std::string::npos) << what;
    EXPECT_NE(what.find("injected fault: nonzero-exit"), std::string::npos)
        << what;
  }
  // The report out-parameter is still populated on the throwing path.
  EXPECT_EQ(report.nonzero_exits, 4u);
  EXPECT_EQ(report.fallbacks, 0u);
  for (const AttemptRecord& a : report.attempts) {
    EXPECT_EQ(a.outcome, AttemptRecord::Outcome::kExitNonzero);
    EXPECT_EQ(a.exit_code, 7);
    EXPECT_NE(a.stderr_excerpt.find("injected fault"), std::string::npos);
  }
}

// ------------------------------------------------------- straggler hedging

TEST(DispatchFaults, StragglerGetsHedgedAndFirstValidBlobWins) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // Shard 3 of plan_shards(1, 6, 3) starts at seed 5; its first attempt
  // sleeps 5 s while the other shards finish in milliseconds. The hedging
  // policy must re-issue it (attempt 2 runs clean) and the sweep must
  // finish far before the sleeping original would have.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.hedge_stragglers = true;
  opts.dispatch.straggler_multiple = 3.0;
  opts.dispatch.straggler_floor = Millis(50);
  opts.dispatch.shard_deadline = Millis(30'000);
  opts.dispatch.extra_worker_args = {
      "--fault", "slow-start@1:if-first-seed=5",
      "--fault-delay-ms", "5000"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kWeakContract,
                                            Regime::kSynchronyConforming,
                                            kN, 6);
  const Clock::time_point t0 = Clock::now();
  const MatrixCell swept = distributed_sweep(ProtocolKind::kWeakContract,
                                             Regime::kSynchronyConforming,
                                             kN, 6, 3, 1, opts);
  const Millis wall =
      std::chrono::duration_cast<Millis>(Clock::now() - t0);

  expect_cells_identical(swept, single);
  EXPECT_GE(report.hedges, 1u);
  // First valid blob wins: the sleeping original was killed and recorded,
  // not waited for.
  EXPECT_GE(report.superseded, 1u);
  EXPECT_LT(wall.count(), 4'000)
      << "hedging failed to rescue the straggler";
  bool saw_hedge_record = false;
  for (const AttemptRecord& a : report.attempts) {
    if (a.hedge && a.outcome == AttemptRecord::Outcome::kSuccess) {
      saw_hedge_record = true;
    }
  }
  EXPECT_TRUE(saw_hedge_record);
}

// ---------------------------------------- pipe discipline under huge output

// Regression for PR 5's close_all hazard: pclose on an unread pipe could
// deadlock against a worker blocked writing a full pipe buffer. The
// dispatcher must drain far-beyond-buffer output on both streams while
// other shards fail, then recover.
TEST(DispatchFaults, LargeBlobWorkerIsDrainedAndRecovered) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.extra_worker_args = {"--fault", "huge-blob@1"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single =
      run_matrix_cell(kFaultProtocol, kFaultRegime, kN, kSeeds);
  const MatrixCell swept = distributed_sweep(kFaultProtocol, kFaultRegime,
                                             kN, kSeeds, 2, 1, opts);
  expect_cells_identical(swept, single);

  // Attempt 1 of each shard wrote a valid blob plus 1 MiB of trailing
  // junk (16x any pipe buffer) and flooded stderr: rejected as trailing
  // bytes, drained without deadlock, stderr capture capped.
  EXPECT_EQ(report.wire_rejects, 2u);
  EXPECT_EQ(report.retries, 2u);
  for (const AttemptRecord& a : report.attempts) {
    if (a.outcome != AttemptRecord::Outcome::kWireReject) continue;
    EXPECT_NE(a.stderr_excerpt.find("[stderr truncated]"),
              std::string::npos);
    EXPECT_LE(a.stderr_excerpt.size(),
              opts.dispatch.stderr_cap + 64);  // cap + marker slack
  }
}

TEST(DispatchFaults, MixedFaultScheduleWithFloodingWorkerDoesNotDeadlock) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // The exact shape that deadlocked the popen driver's error path: one
  // shard fails outright (the old code then tore down all pipes) while
  // the other is mid-way through writing far more than a pipe buffer.
  // plan_shards(1, 4, 2) puts the shards at first seeds 1 and 3.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.max_attempts = 2;
  opts.dispatch.extra_worker_args = {
      "--fault", "nonzero-exit@99:if-first-seed=1",
      "--fault", "huge-blob@99:if-first-seed=3"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming,
                                            kN, 4);
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kTimeBounded,
                        Regime::kSynchronyConforming, kN, 4, 2, 1, opts);
  expect_cells_identical(swept, single);
  EXPECT_EQ(report.nonzero_exits, 2u);  // shard 0: both attempts
  EXPECT_EQ(report.wire_rejects, 2u);   // shard 1: both attempts drained
  EXPECT_EQ(report.fallbacks, 2u);      // both shards degraded in-process
}

// --------------------------------------------------------- launcher seam

class CountingLauncher : public LocalProcessLauncher {
 public:
  WorkerHandle launch(const std::vector<std::string>& argv) override {
    ++launches;
    last_argv = argv;
    return LocalProcessLauncher::launch(argv);
  }
  int launches = 0;
  std::vector<std::string> last_argv;
};

TEST(Dispatcher, PluggableLauncherSeamReceivesEveryLaunch) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  CountingLauncher launcher;
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.launcher = &launcher;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming,
                                            kN, kSeeds);
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kTimeBounded,
                        Regime::kSynchronyConforming, kN, kSeeds, 3, 1,
                        opts);
  expect_cells_identical(swept, single);
  EXPECT_EQ(launcher.launches, 3);
  // The dispatcher passes the attempt ordinal so deterministic fault
  // schedules can key on it.
  bool saw_attempt_flag = false;
  for (std::size_t i = 0; i + 1 < launcher.last_argv.size(); ++i) {
    if (launcher.last_argv[i] == "--attempt") {
      saw_attempt_flag = true;
      EXPECT_EQ(launcher.last_argv[i + 1], "1");
    }
  }
  EXPECT_TRUE(saw_attempt_flag);
}

// ------------------------------------------------------- report plumbing

TEST(Dispatcher, InProcessTransportStillFillsTheReport) {
  DistributedOptions opts;  // empty worker_path: in-process shards
  DispatchReport report;
  opts.report = &report;
  const MatrixCell single = run_matrix_cell(ProtocolKind::kWeakTrusted,
                                            Regime::kPartialSynchrony, kN,
                                            kSeeds);
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kWeakTrusted,
                        Regime::kPartialSynchrony, kN, kSeeds, 4, 1, opts);
  expect_cells_identical(swept, single);
  EXPECT_EQ(report.shards, 4u);
  ASSERT_EQ(report.attempts.size(), 4u);
  for (const AttemptRecord& a : report.attempts) {
    EXPECT_EQ(a.outcome, AttemptRecord::Outcome::kSuccess);
  }
  EXPECT_TRUE(report.clean());
}

TEST(Dispatcher, ReportRendersOutcomesAndStderr) {
  DispatchReport report;
  report.shards = 1;
  report.launches = 2;
  report.retries = 1;
  report.nonzero_exits = 1;
  AttemptRecord a;
  a.shard = 0;
  a.attempt = 1;
  a.outcome = AttemptRecord::Outcome::kExitNonzero;
  a.exit_code = worker_exit::kWireError;
  a.stderr_excerpt = "boom line one\nboom line two";
  a.wall = Millis(12);
  report.attempts.push_back(a);
  const std::string s = report.to_string();
  EXPECT_NE(s.find("1 retry"), std::string::npos) << s;
  EXPECT_NE(s.find("exit-nonzero"), std::string::npos) << s;
  EXPECT_NE(s.find("exit code 3 (wire/serialize error)"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("boom line one"), std::string::npos) << s;
  EXPECT_NE(s.find("boom line two"), std::string::npos) << s;
  EXPECT_FALSE(report.clean());
}

TEST(DispatchFaults, EvenShardCountHedgesOffTheAveragedMedian) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // With 4 shards and one straggler, the hedging threshold is computed
  // from an even completion sample (3 completions by the time the policy
  // looks, then re-checks) — the median is the average of the middle pair,
  // not an element. plan_shards(1, 8, 4) puts the shards at first seeds
  // 1, 3, 5, 7; the seed-7 shard sleeps 5 s on its first attempt.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.hedge_stragglers = true;
  opts.dispatch.straggler_multiple = 3.0;
  opts.dispatch.straggler_floor = Millis(50);
  opts.dispatch.shard_deadline = Millis(30'000);
  opts.dispatch.extra_worker_args = {
      "--fault", "slow-start@1:if-first-seed=7",
      "--fault-delay-ms", "5000"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kWeakContract,
                                            Regime::kSynchronyConforming,
                                            kN, 8);
  const Clock::time_point t0 = Clock::now();
  const MatrixCell swept = distributed_sweep(ProtocolKind::kWeakContract,
                                             Regime::kSynchronyConforming,
                                             kN, 8, 4, 1, opts);
  const Millis wall =
      std::chrono::duration_cast<Millis>(Clock::now() - t0);

  expect_cells_identical(swept, single);
  EXPECT_GE(report.hedges, 1u);
  EXPECT_GE(report.superseded, 1u);
  EXPECT_LT(wall.count(), 4'000)
      << "even-count median failed to trigger the hedge";
}

// --------------------------------------------------- stderr capture cap

TEST(DispatchFaults, StderrCapIsConfigurableAndTruncatesNotDrops) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // Tiny cap via DistributedOptions: a stderr-flooding worker must yield a
  // truncated excerpt — the head of the stream plus the truncation marker
  // — never an empty one and never an uncapped flood in driver memory.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.stderr_cap = 48;
  opts.dispatch.extra_worker_args = {"--fault", "huge-blob@1"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single =
      run_matrix_cell(kFaultProtocol, kFaultRegime, kN, kSeeds);
  const MatrixCell swept = distributed_sweep(kFaultProtocol, kFaultRegime,
                                             kN, kSeeds, 2, 1, opts);
  expect_cells_identical(swept, single);

  constexpr const char* kMarker = "[stderr truncated]";
  bool saw_flooded_attempt = false;
  for (const AttemptRecord& a : report.attempts) {
    if (a.outcome != AttemptRecord::Outcome::kWireReject) continue;
    saw_flooded_attempt = true;
    const std::size_t marker_at = a.stderr_excerpt.find(kMarker);
    ASSERT_NE(marker_at, std::string::npos) << a.stderr_excerpt;
    // Truncated, not dropped: real worker bytes precede the marker...
    EXPECT_GT(marker_at, 0u);
    // ...and the total stays within cap + marker, nowhere near the flood.
    EXPECT_LE(a.stderr_excerpt.size(),
              opts.dispatch.stderr_cap + std::strlen(kMarker) + 1);
  }
  EXPECT_TRUE(saw_flooded_attempt);
}

// ----------------------------------------------- report rendering (golden)

TEST(Dispatcher, ReportToStringGoldenFormat) {
  // The exact rendering is an interface: operators grep these lines and
  // the docs quote them. Pin it byte-for-byte so drift is a deliberate,
  // reviewed change.
  DispatchReport report;
  report.shards = 2;
  report.launches = 4;
  report.retries = 1;
  report.timeouts = 1;
  report.hedges = 1;
  report.superseded = 1;

  AttemptRecord timeout;
  timeout.shard = 0;
  timeout.attempt = 1;
  timeout.outcome = AttemptRecord::Outcome::kTimeout;
  timeout.term_signal = 9;
  timeout.detail = "deadline 250 ms";
  timeout.wall = Millis(251);
  timeout.stderr_excerpt = "late\nvery late";
  report.attempts.push_back(timeout);

  AttemptRecord ok;  // success records render nothing
  ok.shard = 1;
  ok.attempt = 1;
  ok.outcome = AttemptRecord::Outcome::kSuccess;
  ok.wall = Millis(3);
  report.attempts.push_back(ok);

  AttemptRecord hedge;
  hedge.shard = 1;
  hedge.attempt = 2;
  hedge.hedge = true;
  hedge.outcome = AttemptRecord::Outcome::kSuperseded;
  hedge.wall = Millis(5);
  report.attempts.push_back(hedge);

  const std::string golden =
      "dispatch report: 2 shard(s), 4 launch(es), 1 retry, 1 timeout(s), "
      "0 crash(es), 0 wire reject(s), 0 meta mismatch(es), "
      "0 nonzero exit(s), 0 launch failure(s), 1 hedge(s), 1 superseded, "
      "0 fallback(s)\n"
      "  shard 0 attempt 1: timeout, signal 9, deadline 250 ms after 251 ms\n"
      "    stderr: late\n"
      "    stderr: very late\n"
      "  shard 1 attempt 2 (hedge): superseded after 5 ms";
  EXPECT_EQ(report.to_string(), golden);
}

TEST(Dispatcher, ReportToStringGoldenFormatWithHosts) {
  // Same contract as the golden above, for pooled-launcher sweeps: host
  // rollup lines between the summary and the attempt log, and an @host tag
  // on every attempt a pool placed. Plain local dispatch renders neither.
  DispatchReport report;
  report.shards = 1;
  report.launches = 2;
  report.retries = 1;
  report.timeouts = 1;

  DispatchReport::HostRecord a;
  a.host = "node-a";
  a.attempts = 5;
  a.failures = 3;
  a.quarantines = 1;
  a.startup_cost = Millis(12);
  report.hosts.push_back(a);

  DispatchReport::HostRecord b;  // blacklisted, never probed successfully
  b.host = "node-b";
  b.failures = 4;
  b.quarantines = 2;
  b.blacklisted = true;
  report.hosts.push_back(b);

  AttemptRecord timeout;
  timeout.shard = 0;
  timeout.attempt = 1;
  timeout.host = "node-a";
  timeout.outcome = AttemptRecord::Outcome::kTimeout;
  timeout.term_signal = 9;
  timeout.detail = "deadline 250 ms";
  timeout.wall = Millis(251);
  report.attempts.push_back(timeout);

  AttemptRecord ok;  // success records render nothing, host or not
  ok.shard = 0;
  ok.attempt = 2;
  ok.host = "node-b";
  ok.outcome = AttemptRecord::Outcome::kSuccess;
  report.attempts.push_back(ok);

  const std::string golden =
      "dispatch report: 1 shard(s), 2 launch(es), 1 retry, 1 timeout(s), "
      "0 crash(es), 0 wire reject(s), 0 meta mismatch(es), "
      "0 nonzero exit(s), 0 launch failure(s), 0 hedge(s), 0 superseded, "
      "0 fallback(s)\n"
      "  host node-a: 5 attempt(s), 3 failure(s), 1 quarantine(s), "
      "startup 12 ms\n"
      "  host node-b: 0 attempt(s), 4 failure(s), 2 quarantine(s), "
      "blacklisted\n"
      "  shard 0 attempt 1 @node-a: timeout, signal 9, "
      "deadline 250 ms after 251 ms";
  EXPECT_EQ(report.to_string(), golden);
}

// ------------------------------------------- termination escalation + EINTR

#if !defined(_WIN32)
TEST(DispatchFaults, SigtermImmuneWorkerIsEscalatedToSigkill) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // Every attempt installs SIG_IGN for SIGTERM and stalls: the polite
  // deadline kill does nothing, so the sweep completes only if the
  // dispatcher escalates to SIGKILL after term_grace — asynchronously,
  // without stalling supervision of other shards.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.shard_deadline = Millis(250);
  opts.dispatch.term_grace = Millis(200);
  opts.dispatch.max_attempts = 2;
  opts.dispatch.extra_worker_args = {"--fault", "ignore-sigterm@99"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming,
                                            kN, 4);
  const Clock::time_point t0 = Clock::now();
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kTimeBounded,
                        Regime::kSynchronyConforming, kN, 4, 2, 1, opts);
  const Millis wall =
      std::chrono::duration_cast<Millis>(Clock::now() - t0);

  expect_cells_identical(swept, single);
  EXPECT_LT(wall.count(), 5'000);
  EXPECT_EQ(report.timeouts, 4u);
  EXPECT_EQ(report.fallbacks, 2u);
  for (const AttemptRecord& a : report.attempts) {
    if (a.outcome != AttemptRecord::Outcome::kTimeout) continue;
    EXPECT_EQ(a.term_signal, SIGKILL)
        << "a SIGTERM-immune worker can only have died by escalation";
    // Died no earlier than deadline + grace, and promptly after it.
    EXPECT_GE(a.wall.count(), 440);
    EXPECT_LT(a.wall.count(), 2'000);
  }
}

TEST(DispatchFaults, CompliantStallerDiesOnSigtermWithinTheGracePeriod) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // The flip side of escalation: a worker that honors SIGTERM is gone
  // well before the grace period would trigger SIGKILL.
  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.shard_deadline = Millis(250);
  opts.dispatch.term_grace = Millis(10'000);  // escalation would be slow
  opts.dispatch.max_attempts = 2;
  opts.dispatch.extra_worker_args = {"--fault", "stall-forever@99"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single = run_matrix_cell(ProtocolKind::kTimeBounded,
                                            Regime::kSynchronyConforming,
                                            kN, 4);
  const Clock::time_point t0 = Clock::now();
  const MatrixCell swept =
      distributed_sweep(ProtocolKind::kTimeBounded,
                        Regime::kSynchronyConforming, kN, 4, 2, 1, opts);
  const Millis wall =
      std::chrono::duration_cast<Millis>(Clock::now() - t0);

  expect_cells_identical(swept, single);
  EXPECT_LT(wall.count(), 5'000) << "sweep waited out the grace period "
                                    "instead of reaping the SIGTERM exit";
  for (const AttemptRecord& a : report.attempts) {
    if (a.outcome != AttemptRecord::Outcome::kTimeout) continue;
    EXPECT_EQ(a.term_signal, SIGTERM);
    EXPECT_LT(a.wall.count(), 2'000);
  }
}

TEST(DispatchFaults, SignalStormDuringSweepIsByteIdentical) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  // EINTR hardening: a no-op SIGUSR1 handler installed WITHOUT SA_RESTART
  // makes every blocking poll()/read()/waitpid() in the dispatcher
  // eligible to return EINTR, and a storm of signals from a sidecar
  // thread makes sure plenty do. The sweep must neither fail nor drift.
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> stop{false};
  const pthread_t victim = ::pthread_self();
  std::thread storm([&stop, victim] {
    while (!stop.load(std::memory_order_relaxed)) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  // Slow the workers down a touch so the dispatcher spends real time
  // blocked in poll() while signals land.
  opts.dispatch.extra_worker_args = {"--fault", "slow-start@99",
                                     "--fault-delay-ms", "50"};
  DispatchReport report;
  opts.report = &report;

  const MatrixCell single =
      run_matrix_cell(kFaultProtocol, kFaultRegime, kN, kSeeds);
  const MatrixCell swept = distributed_sweep(kFaultProtocol, kFaultRegime,
                                             kN, kSeeds, 3, 1, opts);

  stop.store(true);
  storm.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  expect_cells_identical(swept, single);
  EXPECT_EQ(report.fallbacks, 0u) << report.to_string();
  EXPECT_EQ(report.crashes, 0u) << report.to_string();
}
#endif

// ------------------------------------------------------ worker exit codes

#if !defined(_WIN32)
TEST(WorkerTool, ExitCodesAreDistinct) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const auto exit_of = [&](const std::string& args) {
    const std::string cmd =
        "'" + worker + "' " + args + " >/dev/null 2>/dev/null";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  };
  EXPECT_EQ(exit_of("--help"), 0);
  EXPECT_EQ(exit_of("--bogus-flag"), worker_exit::kUsage);
  EXPECT_EQ(exit_of(""), worker_exit::kUsage);  // missing protocol/regime
  EXPECT_EQ(exit_of("--protocol time-bounded --regime synchrony --seeds x"),
            worker_exit::kUsage);
  // A clean tiny run exits 0 and emits a parseable blob (smoke).
  EXPECT_EQ(exit_of("--protocol time-bounded --regime synchrony --seeds 1"),
            0);
}
#endif

}  // namespace
}  // namespace xcp::exp
