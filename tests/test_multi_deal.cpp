// Concurrent deals on shared substrates: isolation, global conservation,
// per-deal certificate consistency, shared-chain behaviour.

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "props/checkers.hpp"
#include "proto/weak/multi.hpp"

namespace xcp::proto::weak {
namespace {

MultiWeakConfig base(TmKind tm, std::uint64_t seed, int deals, int n) {
  MultiWeakConfig cfg;
  cfg.seed = seed;
  cfg.tm = tm;
  cfg.env = exp::partial_env(exp::default_timing(), /*gst_seconds=*/2,
                             Duration::millis(500));
  for (int d = 0; d < deals; ++d) {
    DealSetup setup;
    setup.spec = DealSpec::uniform(/*deal_id=*/100 + d, n, /*base=*/1000 + d,
                                   /*commission=*/5);
    setup.patience = Duration::seconds(60);
    cfg.deals.push_back(std::move(setup));
  }
  return cfg;
}

class MultiDealTest : public ::testing::TestWithParam<TmKind> {};

TEST_P(MultiDealTest, AllDealsCommitIndependently) {
  const auto records = run_weak_multi(base(GetParam(), 5, 4, 2));
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.bob_paid()) << r.protocol << " deal " << r.spec.deal_id
                              << "\n" << r.summary();
    const auto report = props::check_definition2(r, props::CheckOptions{});
    EXPECT_TRUE(report.all_hold())
        << "deal " << r.spec.deal_id << "\n" << report.str();
  }
}

TEST_P(MultiDealTest, AbortInOneDealDoesNotTouchOthers) {
  auto cfg = base(GetParam(), 6, 3, 2);
  // Deal #1's Alice aborts immediately; deals #0 and #2 must still commit.
  cfg.deals[1].patience_overrides.push_back({0, Duration::millis(1)});
  const auto records = run_weak_multi(cfg);
  EXPECT_TRUE(records[0].bob_paid()) << records[0].summary();
  EXPECT_FALSE(records[1].bob_paid()) << records[1].summary();
  EXPECT_TRUE(records[2].bob_paid()) << records[2].summary();
  for (const auto& r : records) {
    // Per-deal CC: the shared trace contains both commit and abort events,
    // but scoped by deal id each record sees at most one kind.
    EXPECT_TRUE(props::check_certificate_consistency(r).holds)
        << "deal " << r.spec.deal_id;
    const auto report = props::check_definition2(r, props::CheckOptions{});
    EXPECT_TRUE(report.all_hold())
        << "deal " << r.spec.deal_id << "\n" << report.str();
  }
}

TEST_P(MultiDealTest, GlobalConservationAcrossDeals) {
  auto cfg = base(GetParam(), 7, 5, 3);
  cfg.deals[2].byzantine.push_back(
      WeakByzAssignment::customer(1, WeakByz::kCrash));
  cfg.deals[4].patience_overrides.push_back({2, Duration::millis(10)});
  const auto records = run_weak_multi(cfg);
  // Sum net changes over *all* participants of *all* deals: zero.
  std::int64_t total = 0;
  for (const auto& r : records) {
    for (const auto& p : r.participants) {
      total += p.net_units(Currency::generic());
    }
  }
  EXPECT_EQ(total, 0);
}

INSTANTIATE_TEST_SUITE_P(Tms, MultiDealTest,
                         ::testing::Values(TmKind::kTrustedParty,
                                           TmKind::kSmartContract),
                         [](const auto& info) {
                           return info.param == TmKind::kTrustedParty
                                      ? "TrustedParty"
                                      : "SharedChain";
                         });

TEST(MultiDeal, SharedChainHostsManyContracts) {
  // 8 deals through one blockchain: every deal decided, chain accepted the
  // txs of all of them.
  const auto records = run_weak_multi(base(TmKind::kSmartContract, 9, 8, 1));
  ASSERT_EQ(records.size(), 8u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.bob_paid()) << "deal " << r.spec.deal_id;
  }
  // All commits present in the shared trace, one per deal.
  std::size_t commits = 0;
  for (const auto& e : records[0].trace.events()) {
    commits += (e.kind == props::EventKind::kDecide &&
                e.label == std::string("commit"));
  }
  EXPECT_EQ(commits, 8u);
}

TEST(MultiDeal, RejectsDuplicateDealIds) {
  auto cfg = base(TmKind::kSmartContract, 3, 2, 1);
  cfg.deals[1].spec.deal_id = cfg.deals[0].spec.deal_id;
  EXPECT_THROW(run_weak_multi(cfg), std::logic_error);
}

TEST(MultiDeal, DeterministicAcrossRuns) {
  const auto a = run_weak_multi(base(TmKind::kSmartContract, 11, 3, 2));
  const auto b = run_weak_multi(base(TmKind::kSmartContract, 11, 3, 2));
  ASSERT_EQ(a[0].trace.events().size(), b[0].trace.events().size());
  for (std::size_t i = 0; i < a[0].trace.events().size(); ++i) {
    EXPECT_EQ(a[0].trace.events()[i].str(), b[0].trace.events()[i].str()) << i;
  }
}

}  // namespace
}  // namespace xcp::proto::weak
