// Baseline protocols [4]: the naive universal protocol's drift fragility and
// the atomic protocol's missing success guarantee.

#include <gtest/gtest.h>

#include "baselines/interledger.hpp"
#include "exp/scenario.hpp"
#include "props/checkers.hpp"

namespace xcp::baselines {
namespace {

TEST(Universal, MatchesTimeBoundedAtZeroDrift) {
  // With perfect clocks the naive schedule is exactly the Thm 1 protocol.
  auto cfg = exp::thm1_config(3, 5);
  cfg.assumed.rho = 0.0;
  cfg.env.actual_rho = 0.0;
  cfg.env.clock_offset_max = Duration::zero();
  const auto record = run_universal(cfg);
  EXPECT_EQ(record.protocol, "interledger-universal");
  EXPECT_TRUE(record.bob_paid());
  props::CheckOptions opts;
  const auto report = props::check_definition1(record, opts);
  EXPECT_TRUE(report.all_hold()) << report.str();
}

proto::TimeBoundedConfig harsh_drift_config(std::uint64_t seed) {
  // Adversarial-but-legal corner of the environment: every delay close to
  // Delta (delta_min ~ delta_max) and drift at the full bound. The naive
  // schedule's windows under-cover exactly here; the compensated one is
  // sized for it.
  auto cfg = exp::thm1_config(4, seed);
  cfg.assumed.rho = 0.15;
  cfg.env.actual_rho = 0.15;
  cfg.env.delta_min = Duration::millis(95);
  cfg.env.clock_offset_max = Duration::millis(50);
  return cfg;
}

TEST(Universal, DriftBreaksLivenessEventually) {
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto record = run_universal(harsh_drift_config(seed));
    if (!record.bob_paid()) ++failures;
  }
  EXPECT_GT(failures, 0) << "naive schedule survived 15% drift 30/30 times";
}

TEST(Universal, CompensatedScheduleSurvivesSameDrift) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto cfg = harsh_drift_config(seed);
    cfg.compensated = true;
    const auto record = proto::run_time_bounded(cfg);
    EXPECT_TRUE(record.bob_paid()) << "seed=" << seed;
  }
}

TEST(Atomic, CommitsWhenNetworkFast) {
  AtomicConfig cfg;
  cfg.weak = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 2, 3);
  cfg.weak.env = exp::conforming_env(exp::default_timing());
  cfg.notary_deadline = Duration::seconds(5);
  const auto record = run_atomic(cfg);
  EXPECT_EQ(record.protocol, "interledger-atomic");
  EXPECT_TRUE(record.bob_paid()) << record.summary();
}

TEST(Atomic, DeadlineAbortsDespiteHonestWillingParticipants) {
  // Pre-GST chaos beyond the notary's deadline: everyone is honest and
  // willing, yet the run aborts — the all-abort outcome the paper's problem
  // statement explicitly forbids ("a protocol where all participants always
  // abort is not permitted").
  int aborts = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AtomicConfig cfg;
    cfg.weak = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 2, seed);
    cfg.weak.env = exp::partial_env(exp::default_timing(), /*gst_seconds=*/30,
                                    Duration::seconds(10));
    cfg.notary_deadline = Duration::seconds(2);
    const auto record = run_atomic(cfg);
    // Safety always holds.
    const auto es = props::check_escrow_security(record);
    EXPECT_TRUE(es.holds) << es.str();
    const auto cs3 = props::check_cs3(record);
    EXPECT_TRUE(!cs3.applicable || cs3.holds) << cs3.str();
    if (!record.bob_paid()) ++aborts;
  }
  EXPECT_GT(aborts, 0);
}

TEST(Atomic, WeakProtocolCommitsWhereAtomicAborts) {
  // Same chaotic environment; the Thm 3 protocol with patient customers
  // commits because only *customers* decide when to give up.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 2, seed);
    cfg.env = exp::partial_env(exp::default_timing(), /*gst_seconds=*/30,
                               Duration::seconds(10));
    cfg.patience = Duration::seconds(120);
    cfg.horizon = Duration::seconds(400);
    const auto record = proto::weak::run_weak(cfg);
    EXPECT_TRUE(record.bob_paid()) << "seed=" << seed << record.summary();
  }
}

}  // namespace
}  // namespace xcp::baselines
