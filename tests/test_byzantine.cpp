// Safety of the time-bounded protocol against each Byzantine strategy:
// requirements ES and CS must survive arbitrary single-party (and some
// multi-party) deviations, exactly as Definition 1 demands.

#include <gtest/gtest.h>

#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

namespace xcp::proto {
namespace {

TimeBoundedConfig base(int n, std::uint64_t seed) {
  TimeBoundedConfig cfg;
  cfg.seed = seed;
  cfg.spec = DealSpec::uniform(/*deal_id=*/9, n, /*base=*/1000, /*commission=*/5);
  cfg.assumed.delta_max = Duration::millis(100);
  cfg.assumed.processing = Duration::millis(5);
  cfg.assumed.rho = 1e-3;
  cfg.assumed.slack = Duration::millis(10);
  cfg.env.delta_max = cfg.assumed.delta_max;
  cfg.env.processing = cfg.assumed.processing;
  cfg.env.actual_rho = cfg.assumed.rho;
  cfg.env.clock_offset_max = Duration::millis(20);
  cfg.extra_horizon = Duration::seconds(5);
  return cfg;
}

void expect_safety(const RunRecord& r, const std::string& ctx) {
  const auto conservation = props::check_conservation(r);
  EXPECT_TRUE(conservation.holds) << ctx << "\n" << conservation.str();
  const auto es = props::check_escrow_security(r);
  EXPECT_TRUE(!es.applicable || es.holds) << ctx << "\n" << es.str();
  const auto cs1 = props::check_cs1(r, false);
  EXPECT_TRUE(!cs1.applicable || cs1.holds) << ctx << "\n" << cs1.str();
  const auto cs2 = props::check_cs2(r, false);
  EXPECT_TRUE(!cs2.applicable || cs2.holds) << ctx << "\n" << cs2.str();
  const auto cs3 = props::check_cs3(r);
  EXPECT_TRUE(!cs3.applicable || cs3.holds) << ctx << "\n" << cs3.str();
}

struct Case {
  ByzantineAssignment assignment;
  const char* label;
};

class SingleByzantineTest : public ::testing::TestWithParam<Case> {};

TEST_P(SingleByzantineTest, SafetySurvives) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto cfg = base(3, seed);
    cfg.byzantine = {GetParam().assignment};
    const auto record = run_time_bounded(cfg);
    expect_safety(record, std::string(GetParam().label) + " seed=" +
                              std::to_string(seed) + "\n" + record.summary());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SingleByzantineTest,
    ::testing::Values(
        Case{ByzantineAssignment::customer(0, ByzStrategy::kCrashAtStart),
             "alice-crash"},
        Case{ByzantineAssignment::customer(0, ByzStrategy::kWithholdMoney),
             "alice-no-pay"},
        Case{ByzantineAssignment::customer(1, ByzStrategy::kWithholdMoney),
             "chloe1-no-pay"},
        Case{ByzantineAssignment::customer(1, ByzStrategy::kWithholdCert),
             "chloe1-withhold-chi"},
        Case{ByzantineAssignment::customer(3, ByzStrategy::kWithholdCert),
             "bob-withhold-chi"},
        Case{ByzantineAssignment::customer(3, ByzStrategy::kFakeCert),
             "bob-fake-chi"},
        Case{ByzantineAssignment::customer(1, ByzStrategy::kFakeCert),
             "chloe1-fake-chi"},
        Case{ByzantineAssignment::customer(2, ByzStrategy::kMute),
             "chloe2-mute"},
        Case{ByzantineAssignment::escrow(1, ByzStrategy::kCrashAtStart),
             "escrow1-crash"},
        Case{ByzantineAssignment::escrow(0, ByzStrategy::kMute),
             "escrow0-mute"}),
    [](const auto& info) {
      std::string s = info.param.label;
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(Byzantine, FakeCertNeverFoolsAnyone) {
  // Bob substitutes a junk-signed chi: no escrow may pay out on it.
  auto cfg = base(2, 77);
  cfg.byzantine = {ByzantineAssignment::customer(2, ByzStrategy::kFakeCert)};
  const auto record = run_time_bounded(cfg);
  EXPECT_FALSE(record.bob_paid());
  // Every escrow deal refunded, none completed.
  for (const auto& d : record.escrow_deals) {
    EXPECT_EQ(d.state, ledger::EscrowState::kRefunded);
  }
  // Honest customers got their money back.
  EXPECT_EQ(record.alice().net_units(Currency::generic()), 0);
  EXPECT_EQ(record.customer(1).net_units(Currency::generic()), 0);
}

TEST(Byzantine, DelayCertPastDeadlineCausesRefundNotLoss) {
  // Bob delays chi beyond e_1's acceptance window: e_1 refunds Chloe; the
  // late chi is rejected, and nobody abiding loses value.
  auto cfg = base(2, 31);
  auto assignment = ByzantineAssignment::customer(2, ByzStrategy::kDelayCert);
  assignment.delay = Duration::seconds(10);  // way past every window
  cfg.byzantine = {assignment};
  cfg.extra_horizon = Duration::seconds(20);
  const auto record = run_time_bounded(cfg);
  EXPECT_FALSE(record.bob_paid());
  expect_safety(record, "bob-delay-cert");
  EXPECT_EQ(record.alice().net_units(Currency::generic()), 0);
  EXPECT_EQ(record.customer(1).net_units(Currency::generic()), 0);
}

TEST(Byzantine, CrashMidwayLeavesNoAbidingLoss) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = base(3, seed);
    auto assignment = ByzantineAssignment::escrow(1, ByzStrategy::kCrashAt);
    // Crash somewhere inside the run's active phase.
    assignment.crash_at =
        TimePoint::origin() + Duration::millis(50 * static_cast<int>(seed));
    cfg.byzantine = {assignment};
    const auto record = run_time_bounded(cfg);
    expect_safety(record, "escrow1-crash-midway seed=" + std::to_string(seed));
  }
}

TEST(Byzantine, TwoColludingConnectorsCannotStealFromOthers) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = base(4, seed);
    cfg.byzantine = {
        ByzantineAssignment::customer(1, ByzStrategy::kWithholdCert),
        ByzantineAssignment::customer(3, ByzStrategy::kWithholdMoney)};
    const auto record = run_time_bounded(cfg);
    expect_safety(record, "colluding-connectors seed=" + std::to_string(seed));
  }
}

TEST(Byzantine, HonestRunStillLiveWithByzantineObserver) {
  // A mute *escrow-less* deviation cannot exist; instead check that a
  // deviation strictly downstream (bob withholding chi) still lets upstream
  // participants terminate via refunds (T for abiding customers with
  // abiding escrows).
  auto cfg = base(3, 5);
  cfg.byzantine = {ByzantineAssignment::customer(3, ByzStrategy::kWithholdCert)};
  const auto record = run_time_bounded(cfg);
  for (int i = 0; i <= 2; ++i) {
    EXPECT_TRUE(record.customer(i).terminated) << "customer " << i;
    EXPECT_EQ(record.customer(i).final_state, std::string(kDoneRefunded));
  }
}

}  // namespace
}  // namespace xcp::proto
