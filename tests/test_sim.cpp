// Unit tests for the discrete-event simulator, event queue and drift clocks.

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace xcp::sim {
namespace {

// --------------------------------------------------------------- EventQueue

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint::micros(30), [&] { order.push_back(3); });
  q.push(TimePoint::micros(10), [&] { order.push_back(1); });
  q.push(TimePoint::micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(TimePoint::micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(TimePoint::micros(1), [&] { ++fired; });
  q.push(TimePoint::micros(2), [&] { ++fired; });
  q.cancel(a);
  EXPECT_EQ(q.live_size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(12345);
  q.cancel(kInvalidEvent);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------- Simulator

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim(1);
  std::vector<std::int64_t> times;
  sim.schedule_at(TimePoint::micros(100), [&] { times.push_back(sim.now().count()); });
  sim.schedule_at(TimePoint::micros(50), [&] { times.push_back(sim.now().count()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{50, 100}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim(1);
  std::int64_t fired_at = -1;
  sim.schedule_at(TimePoint::micros(10), [&] {
    sim.schedule_after(Duration::micros(5), [&] { fired_at = sim.now().count(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15);
}

TEST(Simulator, SchedulingIntoThePastRejected) {
  Simulator sim(1);
  sim.schedule_at(TimePoint::micros(100), [&] {
    EXPECT_THROW(sim.schedule_at(TimePoint::micros(50), [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_at(TimePoint::micros(10), [&] { ++fired; });
  sim.schedule_at(TimePoint::micros(1000), [&] { ++fired; });
  const bool drained = sim.run_until(TimePoint::micros(100));
  EXPECT_FALSE(drained);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().count(), 100);
  // Continuing past the deadline executes the rest.
  EXPECT_TRUE(sim.run_until(TimePoint::micros(2000)));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopTokenEndsRunAtEventGranularity) {
  Simulator sim(1);
  std::vector<int> ran;
  sim.schedule_at(TimePoint::micros(10), [&] { ran.push_back(1); });
  sim.schedule_at(TimePoint::micros(20), [&] {
    ran.push_back(2);
    // Request mid-event: this event completes, nothing after it runs.
    sim.stop_token().request(sim.now());
  });
  sim.schedule_at(TimePoint::micros(20), [&] { ran.push_back(3); });
  sim.schedule_at(TimePoint::micros(30), [&] { ran.push_back(4); });
  const bool drained = sim.run_until(TimePoint::micros(100));
  EXPECT_FALSE(drained);  // queue still holds the abandoned events
  EXPECT_TRUE(sim.stop_requested());
  EXPECT_EQ(sim.stop_token().requested_at, TimePoint::micros(20));
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  // The clock never advanced past the deciding event.
  EXPECT_EQ(sim.now(), TimePoint::micros(20));
}

TEST(Simulator, EventLimitCatchesLivelock) {
  Simulator sim(1);
  sim.set_event_limit(100);
  std::function<void()> loop = [&] { sim.schedule_after(Duration::micros(1), loop); };
  sim.schedule_at(TimePoint::micros(1), loop);
  EXPECT_THROW(sim.run(), std::logic_error);
}

class CountingProcess final : public Process {
 public:
  int started = 0;
  int timers = 0;
  void on_start() override { ++started; }
  void on_timer(std::uint64_t) override { ++timers; }
  using Process::set_timer_local_after;  // expose for the test
};

TEST(Simulator, ProcessesStartOnceInRegistrationOrder) {
  Simulator sim(1);
  auto& a = sim.spawn<CountingProcess>("a");
  auto& b = sim.spawn<CountingProcess>("b");
  sim.run();
  EXPECT_EQ(a.started, 1);
  EXPECT_EQ(b.started, 1);
  EXPECT_EQ(a.id().value(), 0u);
  EXPECT_EQ(b.id().value(), 1u);
  EXPECT_EQ(sim.process(a.id()).name(), "a");
}

TEST(Simulator, TimerFiresAndCanBeCancelled) {
  Simulator sim(1);
  auto& p = sim.spawn<CountingProcess>("p");
  sim.schedule_at(TimePoint::micros(1), [&] {
    const TimerId keep = p.set_timer_local_after(Duration::micros(10), 1);
    const TimerId kill = p.set_timer_local_after(Duration::micros(20), 2);
    (void)keep;
    sim.cancel(kill);
  });
  sim.run();
  EXPECT_EQ(p.timers, 1);
}

// --------------------------------------------------------------- DriftClock

TEST(DriftClock, PerfectClockIsIdentity) {
  DriftClock c;
  EXPECT_EQ(c.to_local(TimePoint::micros(123)).count(), 123);
  EXPECT_EQ(c.to_global(TimePoint::micros(123)).count(), 123);
}

TEST(DriftClock, FastClockReadsAhead) {
  DriftClock c(TimePoint::origin(), TimePoint::origin(), 1.1);
  EXPECT_EQ(c.to_local(TimePoint::micros(1000)).count(), 1100);
  // Local deadline 1100 is reached at global 1000.
  EXPECT_LE(c.to_global(TimePoint::micros(1100)).count(), 1001);
}

TEST(DriftClock, SlowClockReadsBehind) {
  DriftClock c(TimePoint::origin(), TimePoint::origin(), 0.9);
  EXPECT_EQ(c.to_local(TimePoint::micros(1000)).count(), 900);
}

TEST(DriftClock, ToGlobalIsFirstInstantGuardHolds) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const DriftClock c = DriftClock::sample(rng, 0.01, Duration::millis(10));
    const TimePoint local_deadline =
        TimePoint::micros(rng.next_int(0, 10'000'000));
    const TimePoint g = c.to_global(local_deadline);
    EXPECT_GE(c.to_local(g), local_deadline);
    if (g.count() > 0) {
      EXPECT_LT(c.to_local(g - Duration::micros(1)), local_deadline);
    }
  }
}

TEST(DriftClock, SampledRatesWithinRho) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const DriftClock c = DriftClock::sample(rng, 0.05, Duration::zero());
    EXPECT_GE(c.rate(), 0.95);
    EXPECT_LE(c.rate(), 1.05);
  }
}

TEST(DriftClock, MeasureScalesTrueDurations) {
  DriftClock fast(TimePoint::origin(), TimePoint::origin(), 1.5);
  EXPECT_EQ(fast.measure(Duration::micros(100)).count(), 150);
}

TEST(DriftClock, MonotoneLocalTime) {
  Rng rng(29);
  const DriftClock c = DriftClock::sample(rng, 0.02, Duration::millis(5));
  TimePoint prev = c.to_local(TimePoint::origin());
  for (int k = 1; k <= 1000; ++k) {
    const TimePoint cur = c.to_local(TimePoint::micros(k * 997));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace xcp::sim
