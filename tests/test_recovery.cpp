// Crash-recovery tests (docs/ROBUSTNESS.md, crash-recovery rung):
//  - write-ahead journal unit/fuzz coverage in the style of test_wire's
//    rejection discipline: round-trip, exhaustive truncation at every
//    prefix length, single-byte corruption at every offset, torn-append
//    recovery, crash-phase injection, compaction, foreign-file refusal;
//  - the in-sim amnesia differential: a notary restored with a journaled
//    vote refuses to sign the other value, and the committee still decides;
//  - the multi-process crash-restart harness: real xcp_node processes
//    SIGKILL'd at journaled crash points (before-vote, after-vote-before-
//    send, mid-append torn write, after-decide, double-crash), restarted
//    against the same state dir, for commit and abort deals — the committee
//    outcome must equal the in-sim reference, the rejoiner must converge,
//    and a post-run audit of every journal proves no node signed
//    conflicting votes;
//  - the xcp_node exit-code taxonomy (usage / journal-corrupt).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/standalone.hpp"
#include "net/node_exit.hpp"
#include "net/wal.hpp"
#include "support/durable_file.hpp"

extern char** environ;

namespace xcp {
namespace {

using net::WalCrashPlan;
using net::WalRecord;
using net::WalRecordKind;
using net::WalRecoverResult;
using net::WriteAheadLog;

// ------------------------------------------------------------- helpers

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/xcp_recovery.XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  AppendFile f;
  f.open(path);
  return f.read_all();
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  AppendFile f;
  f.open(path);
  f.truncate(0);
  f.append(bytes);
}

WalRecord sample_record(WalRecordKind kind, std::int32_t round,
                        std::uint8_t value, std::size_t cert_bytes = 0) {
  WalRecord r;
  r.kind = kind;
  r.instance = 13;
  r.round = round;
  r.value = value;
  for (std::size_t i = 0; i < cert_bytes; ++i) {
    r.cert.push_back(static_cast<std::uint8_t>(i * 37 + 1));
  }
  return r;
}

std::vector<WalRecord> sample_records() {
  return {sample_record(WalRecordKind::kPrevote, 0, 0),
          sample_record(WalRecordKind::kPrecommit, 0, 0, 5),
          sample_record(WalRecordKind::kDecide, 1, 0, 64)};
}

/// The journal as raw bytes: header + the given records.
std::vector<std::uint8_t> journal_bytes(const std::vector<WalRecord>& recs) {
  std::vector<std::uint8_t> out;
  const std::uint32_t magic = net::kWalMagic;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((magic >> (8 * i)) & 0xff));
  }
  out.push_back(net::kWalVersion & 0xff);
  out.push_back(net::kWalVersion >> 8);
  for (int i = 0; i < 10; ++i) out.push_back(0);  // flags + meta
  for (const WalRecord& r : recs) {
    const auto framed = net::encode_wal_record(r);
    out.insert(out.end(), framed.begin(), framed.end());
  }
  return out;
}

// --------------------------------------------------------- WAL: basics

TEST(Wal, FreshOpenAppendReopenRoundTrips) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  const auto recs = sample_records();
  {
    WriteAheadLog wal(path);
    const WalRecoverResult rec = wal.open();
    EXPECT_TRUE(rec.fresh);
    EXPECT_FALSE(rec.truncated);
    EXPECT_TRUE(rec.records.empty());
    for (const WalRecord& r : recs) wal.append(r);
  }
  {
    WriteAheadLog wal(path);
    const WalRecoverResult rec = wal.open();
    EXPECT_FALSE(rec.fresh);
    EXPECT_FALSE(rec.truncated);
    EXPECT_EQ(rec.dropped_bytes, 0u);
    ASSERT_EQ(rec.records.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(rec.records[i], recs[i]) << "record " << i;
    }
  }
}

TEST(Wal, RecordEncodingIsStable) {
  // The framing is journal ABI: length-prefixed, CRC'd, little-endian.
  const WalRecord r = sample_record(WalRecordKind::kPrevote, 3, 1);
  const auto framed = net::encode_wal_record(r);
  ASSERT_EQ(framed.size(), 8u + 18u);  // frame + fixed payload, no cert
  const std::uint32_t len = framed[0] | (framed[1] << 8) | (framed[2] << 16) |
                            (static_cast<std::uint32_t>(framed[3]) << 24);
  EXPECT_EQ(len, 18u);
  EXPECT_EQ(framed[8], static_cast<std::uint8_t>(WalRecordKind::kPrevote));
  EXPECT_EQ(framed[8 + 1], 13u);  // instance LE low byte
  EXPECT_EQ(framed[8 + 9], 3u);   // round LE low byte
  EXPECT_EQ(framed[8 + 13], 1u);  // value
}

TEST(Wal, OversizeRecordIsRefusedAtEncode) {
  WalRecord r = sample_record(WalRecordKind::kDecide, 0, 0);
  r.cert.assign(net::kMaxWalRecord + 1, 0xab);
  EXPECT_THROW((void)net::encode_wal_record(r), net::WalError);
}

// --------------------------------------- WAL: truncation & corruption

TEST(Wal, ExhaustiveTruncationNeverMisparses) {
  // Every prefix of a valid journal must recover exactly the records that
  // fit wholly within the prefix — never UB, never a phantom record.
  const auto recs = sample_records();
  const auto full = journal_bytes(recs);

  // Record boundaries: offset just past the header, then past each record.
  std::vector<std::size_t> bounds = {net::kWalHeaderBytes};
  for (const WalRecord& r : recs) {
    bounds.push_back(bounds.back() + net::encode_wal_record(r).size());
  }
  ASSERT_EQ(bounds.back(), full.size());

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + len);
    if (len == 0) {
      const WalRecoverResult res = WriteAheadLog::scan(prefix);
      EXPECT_TRUE(res.fresh);
      continue;
    }
    if (len < net::kWalHeaderBytes) {
      const WalRecoverResult res = WriteAheadLog::scan(prefix);
      EXPECT_TRUE(res.truncated) << len;
      EXPECT_EQ(res.valid_bytes, 0u) << len;
      EXPECT_EQ(res.dropped_bytes, len) << len;
      continue;
    }
    const WalRecoverResult res = WriteAheadLog::scan(prefix);
    std::size_t whole = 0;
    while (whole + 1 < bounds.size() && bounds[whole + 1] <= len) ++whole;
    ASSERT_EQ(res.records.size(), whole) << "prefix length " << len;
    EXPECT_EQ(res.valid_bytes, bounds[whole]) << len;
    EXPECT_EQ(res.truncated, len != bounds[whole]) << len;
    EXPECT_EQ(res.dropped_bytes, len - bounds[whole]) << len;
    for (std::size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(res.records[i], recs[i]);
    }
  }
}

TEST(Wal, EverySingleByteCorruptionIsContained) {
  const auto recs = sample_records();
  const auto full = journal_bytes(recs);
  std::vector<std::size_t> bounds = {net::kWalHeaderBytes};
  for (const WalRecord& r : recs) {
    bounds.push_back(bounds.back() + net::encode_wal_record(r).size());
  }

  for (std::size_t off = 0; off < full.size(); ++off) {
    auto bytes = full;
    bytes[off] ^= 0x5a;
    if (off < 8) {
      // Magic, version or flags: a foreign/garbled header must refuse, not
      // silently truncate someone else's file.
      EXPECT_THROW((void)WriteAheadLog::scan(bytes), net::WalError)
          << "offset " << off;
      continue;
    }
    if (off < net::kWalHeaderBytes) {
      // The reserved meta region is opaque: corruption there is ignored.
      const WalRecoverResult res = WriteAheadLog::scan(bytes);
      EXPECT_EQ(res.records.size(), recs.size()) << "offset " << off;
      EXPECT_FALSE(res.truncated) << "offset " << off;
      continue;
    }
    // Inside record i: records before i survive, i and everything after
    // are dropped as a corrupt suffix (CRC or structural check fires).
    std::size_t hit = 0;
    while (bounds[hit + 1] <= off) ++hit;
    const WalRecoverResult res = WriteAheadLog::scan(bytes);
    EXPECT_TRUE(res.truncated) << "offset " << off;
    ASSERT_EQ(res.records.size(), hit) << "offset " << off;
    EXPECT_EQ(res.valid_bytes, bounds[hit]) << "offset " << off;
    for (std::size_t i = 0; i < hit; ++i) EXPECT_EQ(res.records[i], recs[i]);
  }
}

TEST(Wal, ForeignOrFutureFilesAreRefusedByOpen) {
  TempDir dir;
  // Wrong magic.
  {
    std::vector<std::uint8_t> bytes(32, 0x77);
    write_bytes(dir.file("foreign.wal"), bytes);
    WriteAheadLog wal(dir.file("foreign.wal"));
    EXPECT_THROW((void)wal.open(), net::WalError);
  }
  // Right magic, future version.
  {
    auto bytes = journal_bytes({});
    bytes[4] = 9;  // version 9
    write_bytes(dir.file("future.wal"), bytes);
    WriteAheadLog wal(dir.file("future.wal"));
    EXPECT_THROW((void)wal.open(), net::WalError);
  }
  // Nonzero flags.
  {
    auto bytes = journal_bytes({});
    bytes[6] = 1;
    write_bytes(dir.file("flags.wal"), bytes);
    WriteAheadLog wal(dir.file("flags.wal"));
    EXPECT_THROW((void)wal.open(), net::WalError);
  }
}

TEST(Wal, TornTailIsTruncatedOnOpenAndAppendContinues) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  const auto recs = sample_records();
  auto bytes = journal_bytes(recs);
  // Tear the last record: drop its final 7 bytes.
  bytes.resize(bytes.size() - 7);
  write_bytes(path, bytes);

  WriteAheadLog wal(path);
  const WalRecoverResult rec = wal.open();
  EXPECT_TRUE(rec.truncated);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_GT(rec.dropped_bytes, 0u);

  // The file now ends on a record boundary: appending works and a reopen
  // sees exactly records 0, 1 and the new one.
  const WalRecord extra = sample_record(WalRecordKind::kDecide, 2, 1, 9);
  wal.append(extra);
  wal.close();
  const WalRecoverResult after = WriteAheadLog::scan(read_bytes(path));
  EXPECT_FALSE(after.truncated);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.records[0], recs[0]);
  EXPECT_EQ(after.records[1], recs[1]);
  EXPECT_EQ(after.records[2], extra);
}

// ------------------------------------------------ WAL: crash injection

struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("injected crash") {}
};

net::WalOptions crashing(WalRecordKind kind, WalCrashPlan::Phase phase,
                         std::size_t torn_bytes = 6) {
  net::WalOptions o;
  o.crash_plan.kind = kind;
  o.crash_plan.phase = phase;
  o.crash_plan.torn_bytes = torn_bytes;
  o.crash = [] { throw InjectedCrash(); };
  return o;
}

TEST(Wal, CrashBeforeAppendLeavesNoTrace) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  WriteAheadLog wal(path, crashing(WalRecordKind::kPrevote,
                                   WalCrashPlan::Phase::kBefore));
  (void)wal.open();
  EXPECT_THROW(wal.append(sample_record(WalRecordKind::kPrevote, 0, 1)),
               InjectedCrash);
  wal.close();
  const WalRecoverResult res = WriteAheadLog::scan(read_bytes(path));
  EXPECT_TRUE(res.records.empty());
  EXPECT_FALSE(res.truncated);
}

TEST(Wal, CrashMidAppendLeavesRecoverableTornTail) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  const WalRecord first = sample_record(WalRecordKind::kPrevote, 0, 1);
  {
    WriteAheadLog wal(path, crashing(WalRecordKind::kPrecommit,
                                     WalCrashPlan::Phase::kTorn, 5));
    (void)wal.open();
    wal.append(first);  // unaffected kind: lands whole
    EXPECT_THROW(wal.append(sample_record(WalRecordKind::kPrecommit, 0, 1)),
                 InjectedCrash);
  }
  // The torn precommit is on disk as a 5-byte stump after the prevote.
  const WalRecoverResult raw = WriteAheadLog::scan(read_bytes(path));
  EXPECT_TRUE(raw.truncated);
  EXPECT_EQ(raw.dropped_bytes, 5u);
  ASSERT_EQ(raw.records.size(), 1u);
  EXPECT_EQ(raw.records[0], first);

  // Reopen repairs the tail; the next life appends cleanly.
  WriteAheadLog wal(path);
  const WalRecoverResult rec = wal.open();
  EXPECT_TRUE(rec.truncated);
  ASSERT_EQ(rec.records.size(), 1u);
  wal.append(sample_record(WalRecordKind::kPrecommit, 1, 1));
  wal.close();
  const WalRecoverResult after = WriteAheadLog::scan(read_bytes(path));
  EXPECT_FALSE(after.truncated);
  EXPECT_EQ(after.records.size(), 2u);
}

TEST(Wal, CrashAfterAppendKeepsTheRecordAndFiresOnce) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  WriteAheadLog wal(path, crashing(WalRecordKind::kDecide,
                                   WalCrashPlan::Phase::kAfter));
  (void)wal.open();
  const WalRecord d = sample_record(WalRecordKind::kDecide, 1, 1, 12);
  EXPECT_THROW(wal.append(d), InjectedCrash);
  // One-shot: the same plan must not re-fire in the (test-hook) afterlife.
  wal.append(sample_record(WalRecordKind::kDecide, 1, 1, 12));
  wal.close();
  const WalRecoverResult res = WriteAheadLog::scan(read_bytes(path));
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_EQ(res.records[0], d);
}

TEST(Wal, CompactionReplacesAtomicallyAndStaysAppendable) {
  TempDir dir;
  const std::string path = dir.file("n.wal");
  WriteAheadLog wal(path);
  (void)wal.open();
  for (int i = 0; i < 8; ++i) {
    wal.append(sample_record(WalRecordKind::kPrevote, i, 0));
  }
  const WalRecord snap = sample_record(WalRecordKind::kDecide, 7, 0, 40);
  wal.compact({snap});
  // The handle survived the inode swap: further appends land in the new file.
  wal.append(sample_record(WalRecordKind::kDecide, 8, 0));
  wal.close();
  const WalRecoverResult res = WriteAheadLog::scan(read_bytes(path));
  EXPECT_FALSE(res.truncated);
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_EQ(res.records[0], snap);
}

// ------------------------------------------- in-sim amnesia differential

TEST(Amnesia, RestoredNotaryRefusesToFlipItsPrevote) {
  // Life 1 (journaled, synthesized here) prevoted ABORT in round 0; life 2
  // rejoins a committee whose evidence says COMMIT. The restored notary
  // must not sign a round-0 COMMIT prevote — and the committee (quorum 3
  // of 4) must still decide COMMIT without it.
  consensus::StandaloneCommittee sc;
  sc.evidence = consensus::Value::kCommit;

  TempDir dir;
  WriteAheadLog wal(dir.file("n3.wal"));
  (void)wal.open();

  WalRecord past;
  past.kind = WalRecordKind::kPrevote;
  past.instance = sc.deal_id;
  past.round = 0;
  past.value = static_cast<std::uint8_t>(consensus::Value::kAbort);

  sim::Simulator sim(sc.seed);
  crypto::KeyRegistry keys = sc.make_keys();
  net::Network network(sim, net::DelayModel::synchronous(sc.delta));
  auto config = sc.make_config(keys);
  std::vector<consensus::DecisionCollector*> collectors;
  for (int i = 0; i < sc.participant_count(); ++i) {
    auto& c = sim.spawn<consensus::DecisionCollector>(
        "participant_" + std::to_string(i), config, keys);
    network.attach(c);
    collectors.push_back(&c);
  }
  std::vector<consensus::Notary*> notaries;
  for (int i = 0; i < sc.notaries; ++i) {
    auto& notary = sim.spawn<consensus::Notary>("notary_" + std::to_string(i),
                                                config, keys);
    network.attach(notary);
    notaries.push_back(&notary);
  }
  consensus::Notary& restored = *notaries.back();
  restored.set_wal(&wal);
  restored.restore({past});

  auto msgs = sc.client_messages(keys);
  sim.schedule_at(TimePoint::origin(), [&] {
    for (const auto& m : msgs) network.send(m.from, m.to, m.kind, m.body);
  });
  sim.run_until(TimePoint::origin() + Duration::seconds(120));

  ASSERT_TRUE(collectors[0]->done()) << "committee failed to decide";
  EXPECT_EQ(collectors[0]->value(), consensus::Value::kCommit);
  // The restored notary converges too (round > 0 or via the decision
  // broadcast), without ever having equivocated in round 0.
  EXPECT_EQ(restored.decision(), consensus::Value::kCommit);

  wal.close();
  const WalRecoverResult res = WriteAheadLog::scan(read_bytes(dir.file("n3.wal")));
  for (const WalRecord& r : res.records) {
    if (r.kind == WalRecordKind::kPrevote && r.round == 0) {
      EXPECT_EQ(r.value, past.value)
          << "restored notary signed a conflicting round-0 prevote";
    }
  }
}

// ----------------------------------- multi-process crash-restart harness

std::string node_bin_or_skip() {
  if (const char* env = std::getenv("XCP_NODE_BIN")) {
    if (::access(env, X_OK) == 0) return env;
  }
  if (::access("./xcp_node", X_OK) == 0) return "./xcp_node";
  return {};
}

pid_t spawn_node(const std::string& bin,
                 const std::vector<std::string>& extra_args,
                 const std::string& out_path) {
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, out_path.c_str(),
                                   O_WRONLY | O_CREAT | O_APPEND, 0644);
  posix_spawn_file_actions_addopen(&actions, STDERR_FILENO,
                                   (out_path + ".err").c_str(),
                                   O_WRONLY | O_CREAT | O_APPEND, 0644);
  std::vector<std::string> argv_s;
  argv_s.push_back(bin);
  argv_s.insert(argv_s.end(), extra_args.begin(), extra_args.end());
  std::vector<char*> argv;
  for (auto& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin.c_str(), &actions, nullptr, argv.data(),
                    environ);
  posix_spawn_file_actions_destroy(&actions);
  return rc == 0 ? pid : -1;
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool has_line_with(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

std::string line_with_prefix(const std::string& text,
                             const std::string& prefix) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return {};
}

/// Post-run journal audit: within one node's journal there must be at most
/// one prevote value per round, at most one precommit value overall (they
/// sign the round-independent decision digest), and every decide record
/// must carry `expect`.
void audit_journal(const std::string& path, std::uint8_t expect) {
  const WalRecoverResult res = WriteAheadLog::scan(read_bytes(path));
  std::map<std::int32_t, std::set<std::uint8_t>> prevotes;
  std::set<std::uint8_t> precommits;
  for (const WalRecord& r : res.records) {
    switch (r.kind) {
      case WalRecordKind::kPrevote:
        prevotes[r.round].insert(r.value);
        break;
      case WalRecordKind::kPrecommit:
        precommits.insert(r.value);
        break;
      case WalRecordKind::kDecide:
        EXPECT_EQ(r.value, expect) << path << ": decide against the outcome";
        break;
      case WalRecordKind::kInvalid:
        FAIL() << path << ": invalid record survived a scan";
    }
  }
  for (const auto& [round, values] : prevotes) {
    EXPECT_LE(values.size(), 1u)
        << path << ": conflicting prevotes in round " << round;
  }
  EXPECT_LE(precommits.size(), 1u) << path << ": conflicting precommits";
}

struct CrashSchedule {
  const char* name;        // test label
  const char* first;       // --crash-at for the victim's first life
  const char* second;      // optional --crash-at for the second life
};

TEST(CrashRestart, CommitteeOutcomeSurvivesEveryCrashSchedule) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";

  const CrashSchedule schedules[] = {
      {"crash-before-vote", "prevote:before", nullptr},
      {"crash-after-vote-before-send", "prevote:after", nullptr},
      {"crash-mid-journal-append", "precommit:torn:10", nullptr},
      {"crash-after-decide", "decide:after", nullptr},
      {"double-crash", "prevote:after", "decide:after"},
  };

  for (const char* value : {"commit", "abort"}) {
    consensus::StandaloneCommittee sc;
    sc.evidence = std::strcmp(value, "commit") == 0
                      ? consensus::Value::kCommit
                      : consensus::Value::kAbort;
    const auto ref = run_standalone_sim(sc);
    ASSERT_TRUE(ref.value.has_value()) << "reference run undecided";
    const std::uint8_t expect = static_cast<std::uint8_t>(*ref.value);

    for (const CrashSchedule& sched : schedules) {
      SCOPED_TRACE(std::string(sched.name) + " / " + value);
      TempDir dir;
      const std::string sdir = dir.path;
      // The victim is notary 0 — the round-0 leader. Its propose -> (self-
      // delivered) prevote -> precommit chain runs synchronously off the
      // evidence arrival, so each armed journal append is guaranteed to be
      // reached: a non-leader victim can race the others' decision
      // broadcast and decide without ever voting.
      const int victim = 0;
      // Generous linger so survivors stay up to serve catch-up to the
      // respawned victim (which rejoins within a couple of seconds).
      const std::vector<std::string> common = {
          "--sock-dir",      dir.path,  "--value",        value,
          "--wall-limit-ms", "30000",   "--linger-ms",    "2500",
          "--state-dir",     sdir};

      std::vector<pid_t> pids;
      for (int k = 0; k < sc.notaries; ++k) {
        auto args = common;
        args.insert(args.end(), {"--node-id", std::to_string(k)});
        if (k == victim) {
          args.insert(args.end(), {"--crash-at", sched.first});
        }
        const pid_t pid =
            spawn_node(bin, args, dir.file("out-" + std::to_string(k)));
        ASSERT_GT(pid, 0);
        pids.push_back(pid);
      }
      auto client_args = common;
      client_args.insert(client_args.end(),
                         {"--node-id", std::to_string(sc.notaries)});
      const pid_t client =
          spawn_node(bin, client_args, dir.file("out-client"));
      ASSERT_GT(client, 0);

      // The armed journal append SIGKILLs the victim mid-protocol.
      ASSERT_EQ(wait_exit(pids[victim]), 128 + SIGKILL)
          << slurp(dir.file("out-" + std::to_string(victim) + ".err"));

      // Life 2: same state dir. Optionally armed again (double-crash).
      {
        auto args = common;
        args.insert(args.end(), {"--node-id", std::to_string(victim)});
        if (sched.second != nullptr) {
          args.insert(args.end(), {"--crash-at", sched.second});
        }
        const pid_t pid = spawn_node(
            bin, args, dir.file("out-" + std::to_string(victim)));
        ASSERT_GT(pid, 0);
        if (sched.second != nullptr) {
          ASSERT_EQ(wait_exit(pid), 128 + SIGKILL)
              << slurp(dir.file("out-" + std::to_string(victim) + ".err"));
        } else {
          pids[victim] = pid;
        }
      }
      // Life 3 for the double-crash schedule: clean restart, plus a
      // compaction pass to exercise the snapshot path under a real rejoin.
      if (sched.second != nullptr) {
        auto args = common;
        args.insert(args.end(), {"--node-id", std::to_string(victim),
                                 "--journal-compact"});
        const pid_t pid = spawn_node(
            bin, args, dir.file("out-" + std::to_string(victim)));
        ASSERT_GT(pid, 0);
        pids[victim] = pid;
      }

      // Everyone converges: client certifies, survivors and the rejoined
      // victim decide the reference value.
      EXPECT_EQ(wait_exit(client), 0) << slurp(dir.file("out-client.err"));
      const std::string out = slurp(dir.file("out-client"));
      EXPECT_EQ(line_with_prefix(out, "OUTCOME "),
                "OUTCOME " + ref.canonical())
          << out;
      for (int k = 0; k < sc.notaries; ++k) {
        EXPECT_EQ(wait_exit(pids[k]), 0)
            << slurp(dir.file("out-" + std::to_string(k) + ".err"));
        const std::string nout = slurp(dir.file("out-" + std::to_string(k)));
        EXPECT_TRUE(has_line_with(
            nout, std::string("DECIDED value=") + value))
            << nout;
      }
      const std::string vout =
          slurp(dir.file("out-" + std::to_string(victim)));
      EXPECT_TRUE(has_line_with(vout, "RECOVERED node=" +
                                          std::to_string(victim)))
          << vout;
      if (sched.second != nullptr) {
        EXPECT_TRUE(has_line_with(vout, "COMPACTED records=1")) << vout;
      }

      // No journal anywhere holds conflicting votes, and every journaled
      // decision matches the committee outcome — across all the victim's
      // lives, since the journal survived them.
      for (int k = 0; k < sc.notaries; ++k) {
        audit_journal(dir.file("node-" + std::to_string(k) + ".wal"),
                      expect);
      }
    }
  }
}

// -------------------------------------------------- exit-code taxonomy

TEST(NodeExitCodes, UsageErrorsExitTwo) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";
  TempDir dir;
  const pid_t pid = spawn_node(bin, {"--node-id", "0"}, dir.file("out"));
  ASSERT_GT(pid, 0);
  EXPECT_EQ(wait_exit(pid), net::node_exit::kUsage);
  // --crash-at without --state-dir is a usage error too.
  const pid_t pid2 = spawn_node(
      bin,
      {"--node-id", "0", "--sock-dir", dir.path, "--crash-at",
       "prevote:after"},
      dir.file("out2"));
  ASSERT_GT(pid2, 0);
  EXPECT_EQ(wait_exit(pid2), net::node_exit::kUsage);
}

TEST(NodeExitCodes, CorruptJournalExitsJournalCorrupt) {
  const std::string bin = node_bin_or_skip();
  if (bin.empty()) GTEST_SKIP() << "xcp_node binary not found";
  TempDir dir;
  // A file with the right name but a foreign header: the node must refuse
  // to truncate it and exit with the journal-corrupt code.
  std::vector<std::uint8_t> foreign(64, 0x77);
  write_bytes(dir.file("node-0.wal"), foreign);
  const pid_t pid = spawn_node(
      bin,
      {"--node-id", "0", "--sock-dir", dir.path, "--state-dir", dir.path,
       "--wall-limit-ms", "2000"},
      dir.file("out"));
  ASSERT_GT(pid, 0);
  EXPECT_EQ(wait_exit(pid), net::node_exit::kJournalCorrupt)
      << slurp(dir.file("out.err"));
}

}  // namespace
}  // namespace xcp
