// Unit tests for the ANTA formalism: automaton structure, validation,
// interpreter semantics (buffering, timeouts, clock variables), rendering.

#include <gtest/gtest.h>

#include "anta/automaton.hpp"
#include "anta/interpreter.hpp"
#include "anta/render.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace xcp::anta {
namespace {

using net::Message;

/// Driver actor that fires scripted messages at given times.
class Script final : public net::Actor {
 public:
  struct Step {
    Duration at;
    sim::ProcessId to;
    std::string kind;
  };
  explicit Script(std::vector<Step> steps) : steps_(std::move(steps)) {}
  void on_start() override {
    for (const auto& s : steps_) {
      sim().schedule_at(TimePoint::origin() + s.at,
                        [this, s] { send(s.to, s.kind, nullptr); });
    }
  }
  void on_message(const Message&) override {}

 private:
  std::vector<Step> steps_;
};

struct Rig {
  sim::Simulator sim{123};
  props::TraceRecorder trace;
  net::Network net{sim,
                   std::make_unique<net::SynchronousModel>(Duration::millis(1),
                                                           Duration::millis(2)),
                   &trace};
};

// ------------------------------------------------------------ structure

TEST(Automaton, ValidationCatchesMalformedShapes) {
  {
    Automaton a("no-initial");
    a.add_state("s", StateKind::kInput);
    EXPECT_THROW(a.validate(), std::logic_error);
  }
  {
    Automaton a("output-without-send");
    const auto s = a.add_state("out", StateKind::kOutput);
    a.set_initial(s);
    EXPECT_THROW(a.validate(), std::logic_error);
  }
  {
    Automaton a("receive-from-output");
    const auto s = a.add_state("out", StateKind::kOutput);
    const auto t = a.add_state("in", StateKind::kInput);
    a.set_initial(s);
    a.add_receive(s, t, sim::ProcessId(0), "m");
    EXPECT_THROW(a.validate(), std::logic_error);
  }
  {
    Automaton a("final-with-exit");
    const auto f = a.add_state("done", StateKind::kFinal);
    const auto i = a.add_state("in", StateKind::kInput);
    a.set_initial(i);
    a.add_receive(f, i, sim::ProcessId(0), "m");
    EXPECT_THROW(a.validate(), std::logic_error);
  }
}

std::shared_ptr<Automaton> two_receive_machine(sim::ProcessId from) {
  // init --r(from,A)--> mid --r(from,B)--> done
  auto a = std::make_shared<Automaton>("two-receive");
  const auto s0 = a->add_state("init", StateKind::kInput);
  const auto s1 = a->add_state("mid", StateKind::kInput);
  const auto s2 = a->add_state("done", StateKind::kFinal);
  a->set_initial(s0);
  a->add_receive(s0, s1, from, "A");
  a->add_receive(s1, s2, from, "B");
  return a;
}

TEST(Interpreter, InOrderMessagesRunToFinal) {
  Rig rig;
  auto& script = rig.sim.spawn<Script>(
      "script", std::vector<Script::Step>{{Duration::millis(10),
                                           sim::ProcessId(1), "A"},
                                          {Duration::millis(20),
                                           sim::ProcessId(1), "B"}});
  auto& interp = rig.sim.spawn<Interpreter>(
      "m", two_receive_machine(script.id()), Duration::millis(1));
  rig.net.attach(script);
  rig.net.attach(interp);
  rig.sim.run();
  EXPECT_TRUE(interp.finished());
  EXPECT_EQ(interp.automaton().state_name(interp.state()), "done");
}

TEST(Interpreter, OutOfOrderMessagesAreBuffered) {
  // B arrives before A; the machine must buffer B, take A, then replay B.
  Rig rig;
  auto& script = rig.sim.spawn<Script>(
      "script", std::vector<Script::Step>{{Duration::millis(10),
                                           sim::ProcessId(1), "B"},
                                          {Duration::millis(30),
                                           sim::ProcessId(1), "A"}});
  auto& interp = rig.sim.spawn<Interpreter>(
      "m", two_receive_machine(script.id()), Duration::millis(1));
  rig.net.attach(script);
  rig.net.attach(interp);
  rig.sim.run();
  EXPECT_TRUE(interp.finished());
}

TEST(Interpreter, WrongSenderIgnored) {
  Rig rig;
  auto& stranger = rig.sim.spawn<Script>(
      "stranger", std::vector<Script::Step>{{Duration::millis(5),
                                             sim::ProcessId(2), "A"}});
  auto& script = rig.sim.spawn<Script>("script", std::vector<Script::Step>{});
  auto& interp = rig.sim.spawn<Interpreter>(
      "m", two_receive_machine(script.id()), Duration::millis(1));
  rig.net.attach(stranger);
  rig.net.attach(script);
  rig.net.attach(interp);
  rig.sim.run();
  // "A" from the stranger must not advance a machine expecting it from
  // `script` (r(id, m) names the sender).
  EXPECT_FALSE(interp.finished());
  EXPECT_EQ(interp.automaton().state_name(interp.state()), "init");
}

TEST(Interpreter, TimeoutFiresOnLocalClock) {
  // init(out) sends ping to itself? Simpler: wait state with guard on var
  // assigned at start via an output state's effect.
  auto a = std::make_shared<Automaton>("timeout");
  const auto s0 = a->add_state("announce", StateKind::kOutput);
  const auto s1 = a->add_state("wait", StateKind::kInput);
  const auto s2 = a->add_state("expired", StateKind::kFinal);
  const auto u = a->add_var("u");
  a->set_initial(s0);
  auto& send_t = a->set_send(s0, s1, sim::ProcessId(0), "noop");
  send_t.effect = [u](Interpreter& in) { in.assign_now(u); };
  a->add_timeout(s1, s2, TimeGuard{u, Duration::millis(50)});

  Rig rig;
  auto& sink = rig.sim.spawn<Script>("sink", std::vector<Script::Step>{});
  auto& interp = rig.sim.spawn<Interpreter>("m", a, Duration::millis(1));
  rig.net.attach(sink);
  rig.net.attach(interp);
  // Give the interpreter a fast clock (rate 1.25): the local 50ms deadline
  // should arrive after only ~40ms of true time.
  rig.sim.set_clock(interp.id(),
                    sim::DriftClock(TimePoint::origin(), TimePoint::origin(),
                                    1.25));
  rig.sim.run();
  EXPECT_TRUE(interp.finished());
  EXPECT_GE(interp.terminated_local() - TimePoint::origin(),
            Duration::millis(50));
  EXPECT_LE(interp.terminated_global() - TimePoint::origin(),
            Duration::millis(45));  // 40ms + processing bound
}

TEST(Interpreter, ReceiveBeatsTimeoutWhenEarlier) {
  auto make = [] {
    auto a = std::make_shared<Automaton>("race");
    const auto s0 = a->add_state("announce", StateKind::kOutput);
    const auto s1 = a->add_state("wait", StateKind::kInput);
    const auto got = a->add_state("got", StateKind::kFinal);
    const auto expired = a->add_state("expired", StateKind::kFinal);
    const auto u = a->add_var("u");
    a->set_initial(s0);
    a->set_send(s0, s1, sim::ProcessId(0), "noop").effect =
        [u](Interpreter& in) { in.assign_now(u); };
    a->add_receive(s1, got, sim::ProcessId(0), "M");
    a->add_timeout(s1, expired, TimeGuard{u, Duration::millis(100)});
    return a;
  };
  {
    Rig rig;
    auto& script = rig.sim.spawn<Script>(
        "sink", std::vector<Script::Step>{{Duration::millis(20),
                                           sim::ProcessId(1), "M"}});
    auto& interp = rig.sim.spawn<Interpreter>("m", make(), Duration::millis(1));
    rig.net.attach(script);
    rig.net.attach(interp);
    rig.sim.run();
    EXPECT_EQ(interp.automaton().state_name(interp.state()), "got");
  }
  {
    Rig rig;
    auto& script = rig.sim.spawn<Script>(
        "sink", std::vector<Script::Step>{{Duration::millis(500),
                                           sim::ProcessId(1), "M"}});
    auto& interp = rig.sim.spawn<Interpreter>("m", make(), Duration::millis(1));
    rig.net.attach(script);
    rig.net.attach(interp);
    rig.sim.run();
    EXPECT_EQ(interp.automaton().state_name(interp.state()), "expired");
  }
}

TEST(Interpreter, AcceptCallbackDiscardsInvalidContent) {
  auto a = std::make_shared<Automaton>("picky");
  const auto s0 = a->add_state("wait", StateKind::kInput);
  const auto s1 = a->add_state("done", StateKind::kFinal);
  a->set_initial(s0);
  int offered = 0;
  auto& t = a->add_receive(s0, s1, sim::ProcessId(0), "M");
  t.accept = [&offered](const Message&, Interpreter&) {
    return ++offered >= 3;  // reject the first two matching messages
  };
  Rig rig;
  auto& script = rig.sim.spawn<Script>(
      "s", std::vector<Script::Step>{{Duration::millis(10), sim::ProcessId(1), "M"},
                                     {Duration::millis(20), sim::ProcessId(1), "M"},
                                     {Duration::millis(30), sim::ProcessId(1), "M"}});
  auto& interp = rig.sim.spawn<Interpreter>("m", a, Duration::millis(1));
  rig.net.attach(script);
  rig.net.attach(interp);
  rig.sim.run();
  EXPECT_TRUE(interp.finished());
  EXPECT_EQ(offered, 3);
}

TEST(Interpreter, SendInterceptorDropAndHalt) {
  auto machine = [](sim::ProcessId dest) {
    auto a = std::make_shared<Automaton>("sender");
    const auto s0 = a->add_state("send1", StateKind::kOutput);
    const auto s1 = a->add_state("send2", StateKind::kOutput);
    const auto s2 = a->add_state("done", StateKind::kFinal);
    a->set_initial(s0);
    a->set_send(s0, s1, dest, "one");
    a->set_send(s1, s2, dest, "two");
    return a;
  };
  {
    // Drop "one": the automaton continues and still sends "two".
    Rig rig;
    auto& sink = rig.sim.spawn<Script>("sink", std::vector<Script::Step>{});
    auto& interp =
        rig.sim.spawn<Interpreter>("m", machine(sink.id()), Duration::millis(1));
    rig.net.attach(sink);
    rig.net.attach(interp);
    interp.set_send_interceptor([](const Transition& t, Interpreter&) {
      return t.send_kind == "one" ? SendAction::drop() : SendAction::allow();
    });
    rig.sim.run();
    EXPECT_TRUE(interp.finished());
    EXPECT_EQ(rig.net.stats().messages_sent, 1u);
  }
  {
    // Halt on "one": nothing is ever sent and the machine never finishes.
    Rig rig;
    auto& sink = rig.sim.spawn<Script>("sink", std::vector<Script::Step>{});
    auto& interp =
        rig.sim.spawn<Interpreter>("m", machine(sink.id()), Duration::millis(1));
    rig.net.attach(sink);
    rig.net.attach(interp);
    interp.set_send_interceptor(
        [](const Transition&, Interpreter&) { return SendAction::halt(); });
    rig.sim.run();
    EXPECT_FALSE(interp.finished());
    EXPECT_TRUE(interp.halted());
    EXPECT_EQ(rig.net.stats().messages_sent, 0u);
  }
}

TEST(Render, DotAndAsciiContainStatesAndLabels) {
  auto a = two_receive_machine(sim::ProcessId(7));
  const std::string dot = to_dot(*a);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("init"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  const std::string ascii = to_ascii(*a);
  EXPECT_NE(ascii.find("two-receive"), std::string::npos);
  EXPECT_NE(ascii.find("r(p7,A)"), std::string::npos);
}

}  // namespace
}  // namespace xcp::anta
