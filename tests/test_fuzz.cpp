// Fuzz-style randomized robustness tests.
//
// The paper's safety requirements (ES, CS, CC, conservation) are
// *unconditional*: they must survive any Byzantine behaviour of the other
// participants and any legal network timing. These tests search that space
// randomly — random timing adversaries within the synchrony envelope, random
// Byzantine strategy assignments, and (beyond the model) message loss — and
// assert that no abiding participant is ever harmed. Each failure would
// replay exactly from its printed seed.

#include <gtest/gtest.h>

#include "anta/analysis.hpp"
#include "exp/scenario.hpp"
#include "net/adversary.hpp"
#include "props/checkers.hpp"
#include "proto/figure2.hpp"
#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"

namespace xcp {
namespace {

/// Builds a random rule-based adversary: holds random (kind, target) message
/// classes until random times. All proposals are clamped by the network to
/// the synchrony model's envelope, so these are always legal schedules.
proto::AdversaryFactory random_adversary(std::uint64_t seed) {
  return [seed](const proto::Participants& parts,
                const proto::TimelockSchedule& schedule)
             -> std::unique_ptr<net::Adversary> {
    Rng rng(seed ^ 0xfeedface);
    auto adv = std::make_unique<net::RuleBasedAdversary>();
    const std::vector<std::string> kinds{"G", "P", "$", "chi"};
    const int rules = static_cast<int>(rng.next_int(1, 6));
    const Duration horizon = schedule.horizon();
    for (int k = 0; k < rules; ++k) {
      const std::string kind =
          kinds[static_cast<std::size_t>(rng.next_int(0, 3))];
      std::vector<net::RuleBasedAdversary::Predicate> preds{
          net::RuleBasedAdversary::kind_is(kind)};
      if (rng.next_bool(0.5)) {
        const auto& pool = rng.next_bool(0.5) ? parts.customers : parts.escrows;
        preds.push_back(net::RuleBasedAdversary::to_process(
            pool[static_cast<std::size_t>(
                rng.next_int(0, static_cast<std::int64_t>(pool.size()) - 1))]));
      }
      const TimePoint release =
          TimePoint::origin() +
          Duration::micros(rng.next_int(0, 3 * horizon.count()));
      adv->hold_until(net::RuleBasedAdversary::all_of(std::move(preds)),
                      release);
    }
    return adv;
  };
}

TEST(Fuzz, TimeBoundedSafetyUnderRandomTimingAdversaries) {
  // Partial synchrony with a random griefing adversary: liveness may die,
  // safety may not.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto cfg = exp::thm1_config(static_cast<int>(1 + seed % 4), seed);
    cfg.env = exp::partial_env(cfg.assumed, /*gst_seconds=*/60,
                               Duration::millis(200));
    cfg.adversary = random_adversary(seed);
    cfg.extra_horizon = Duration::seconds(120);
    const auto record = proto::run_time_bounded(cfg);

    const auto ctx = "seed=" + std::to_string(seed);
    EXPECT_TRUE(props::check_conservation(record).holds) << ctx;
    EXPECT_TRUE(props::check_escrow_security(record).holds) << ctx;
    const auto cs1 = props::check_cs1(record, false);
    EXPECT_TRUE(!cs1.applicable || cs1.holds) << ctx << cs1.str();
    const auto cs2 = props::check_cs2(record, false);
    EXPECT_TRUE(!cs2.applicable || cs2.holds) << ctx << cs2.str();
    const auto cs3 = props::check_cs3(record);
    EXPECT_TRUE(!cs3.applicable || cs3.holds)
        << ctx << cs3.str() << record.summary();
  }
}

TEST(Fuzz, TimeBoundedSafetyUnderRandomByzantineCombos) {
  const std::vector<proto::ByzStrategy> strategies{
      proto::ByzStrategy::kCrashAtStart, proto::ByzStrategy::kWithholdMoney,
      proto::ByzStrategy::kWithholdCert, proto::ByzStrategy::kDelayCert,
      proto::ByzStrategy::kFakeCert,     proto::ByzStrategy::kMute};
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 131);
    const int n = static_cast<int>(rng.next_int(2, 5));
    auto cfg = exp::thm1_config(n, seed);
    cfg.extra_horizon = Duration::seconds(30);
    // Corrupt a random subset (possibly several participants).
    const int corrupt = static_cast<int>(rng.next_int(1, 3));
    for (int k = 0; k < corrupt; ++k) {
      proto::ByzantineAssignment b;
      b.is_escrow = rng.next_bool(0.4);
      b.index = static_cast<int>(
          rng.next_int(0, b.is_escrow ? n - 1 : n));
      b.strategy =
          strategies[static_cast<std::size_t>(rng.next_int(0, 5))];
      b.delay = Duration::millis(rng.next_int(1, 5000));
      b.crash_at = TimePoint::origin() + Duration::millis(rng.next_int(0, 2000));
      if (b.strategy == proto::ByzStrategy::kCrashAt) {
        // normalize: kCrashAt not in list, keep as-is
      }
      cfg.byzantine.push_back(b);
    }
    const auto record = proto::run_time_bounded(cfg);
    const auto ctx = "seed=" + std::to_string(seed);
    EXPECT_TRUE(props::check_conservation(record).holds) << ctx;
    const auto es = props::check_escrow_security(record);
    EXPECT_TRUE(es.holds) << ctx << es.str() << record.summary();
    const auto cs1 = props::check_cs1(record, false);
    EXPECT_TRUE(!cs1.applicable || cs1.holds) << ctx << cs1.str();
    const auto cs2 = props::check_cs2(record, false);
    EXPECT_TRUE(!cs2.applicable || cs2.holds) << ctx << cs2.str();
    const auto cs3 = props::check_cs3(record);
    EXPECT_TRUE(!cs3.applicable || cs3.holds)
        << ctx << cs3.str() << record.summary();
  }
}

TEST(Fuzz, WeakProtocolSafetyUnderRandomByzantineCombos) {
  const std::vector<proto::weak::WeakByz> strategies{
      proto::weak::WeakByz::kCrash,     proto::weak::WeakByz::kNoDeposit,
      proto::weak::WeakByz::kNoReport,  proto::weak::WeakByz::kNoResolve,
      proto::weak::WeakByz::kNoChi,     proto::weak::WeakByz::kEagerAbort};
  const std::vector<proto::weak::TmKind> tms{
      proto::weak::TmKind::kTrustedParty,
      proto::weak::TmKind::kSmartContract,
      proto::weak::TmKind::kNotaryCommittee};
  for (std::uint64_t seed = 1; seed <= 45; ++seed) {
    Rng rng(seed * 733);
    const int n = static_cast<int>(rng.next_int(1, 4));
    auto cfg = exp::thm3_config(
        tms[static_cast<std::size_t>(seed % tms.size())], n, seed);
    cfg.patience = Duration::seconds(15);
    cfg.horizon = Duration::seconds(120);
    const int corrupt = static_cast<int>(rng.next_int(1, 2));
    for (int k = 0; k < corrupt; ++k) {
      proto::weak::WeakByzAssignment b;
      b.is_escrow = rng.next_bool(0.4);
      b.index =
          static_cast<int>(rng.next_int(0, b.is_escrow ? n - 1 : n));
      b.behaviour = strategies[static_cast<std::size_t>(rng.next_int(0, 5))];
      cfg.byzantine.push_back(b);
    }
    const auto record = proto::weak::run_weak(cfg);
    const auto ctx = "seed=" + std::to_string(seed);
    EXPECT_TRUE(props::check_conservation(record).holds) << ctx;
    const auto es = props::check_escrow_security(record);
    EXPECT_TRUE(es.holds) << ctx << es.str();
    EXPECT_TRUE(props::check_certificate_consistency(record).holds) << ctx;
    const auto cs3 = props::check_cs3(record);
    EXPECT_TRUE(!cs3.applicable || cs3.holds)
        << ctx << cs3.str() << record.summary();
  }
}

TEST(Fuzz, MessageLossBreaksOnlyLiveness) {
  // The model assumes reliable delivery. Violate it: drop each message with
  // probability p. Deliveries that *do* happen are still authentic, so
  // safety must hold; liveness degrades with p.
  int lively = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 11);
    auto cfg = exp::thm1_config(3, seed);
    cfg.extra_horizon = Duration::seconds(30);
    cfg.env.drop_probability = rng.next_double(0.05, 0.5);
    const auto record = proto::run_time_bounded(cfg);
    const auto ctx = "seed=" + std::to_string(seed);
    EXPECT_TRUE(props::check_conservation(record).holds) << ctx;
    EXPECT_TRUE(props::check_escrow_security(record).holds) << ctx;
    const auto cs3 = props::check_cs3(record);
    EXPECT_TRUE(!cs3.applicable || cs3.holds) << ctx << record.summary();
    if (record.bob_paid()) ++lively;
  }
  // Some runs survive light loss, heavy loss kills progress; both extremes
  // all-30 would make the test vacuous.
  EXPECT_GT(lively, 0);
  EXPECT_LT(lively, 30);
}

TEST(Fuzz, WeakProtocolRidesOutModerateLoss) {
  // The weak protocol broadcasts its evidence and certificates redundantly
  // (escrows relay certs to customers); with moderate loss it usually still
  // decides — and is always safe.
  int decided = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 2, seed);
    cfg.env.drop_probability = 0.10;
    cfg.patience = Duration::seconds(20);
    cfg.horizon = Duration::seconds(120);
    const auto record = proto::weak::run_weak(cfg);
    const auto ctx = "seed=" + std::to_string(seed);
    EXPECT_TRUE(props::check_conservation(record).holds) << ctx;
    EXPECT_TRUE(props::check_escrow_security(record).holds) << ctx;
    EXPECT_TRUE(props::check_certificate_consistency(record).holds) << ctx;
    decided += (record.trace.count(props::EventKind::kDecide) > 0);
  }
  EXPECT_GT(decided, 0);
}

TEST(Fuzz, Figure2AutomataAreStructurallyClean) {
  // Static analysis of every generated automaton across deal sizes: all
  // states reachable, and every state can reach a final state (the
  // structural half of requirement C).
  for (int n : {1, 2, 3, 8}) {
    auto ctx = std::make_shared<proto::Fig2Context>();
    ctx->spec = proto::DealSpec::uniform(1, n, 100, 1);
    for (int i = 0; i <= n; ++i) {
      ctx->parts.customers.push_back(
          sim::ProcessId(static_cast<std::uint32_t>(i)));
    }
    for (int i = 0; i < n; ++i) {
      ctx->parts.escrows.push_back(
          sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i)));
    }
    ctx->schedule =
        proto::TimelockSchedule::drift_compensated(n, exp::default_timing());
    ledger::Ledger ledger;
    ledger::EscrowRegistry escrows(ledger);
    crypto::KeyRegistry keys(1);
    ctx->ledger = &ledger;
    ctx->escrows = &escrows;
    ctx->keys = &keys;
    ctx->bob_signer = keys.signer_for(ctx->parts.bob());

    for (int i = 0; i <= n; ++i) {
      const auto a = proto::build_customer_automaton(ctx, i);
      const auto report = anta::analyze(*a);
      EXPECT_TRUE(report.clean()) << report.str(*a);
    }
    for (int i = 0; i < n; ++i) {
      const auto a = proto::build_escrow_automaton(ctx, i);
      const auto report = anta::analyze(*a);
      EXPECT_TRUE(report.clean()) << report.str(*a);
    }
  }
}

TEST(Fuzz, AnalysisDetectsPlantedDefects) {
  // The analyzer must fire on planted structural bugs.
  anta::Automaton a("defective");
  const auto s0 = a.add_state("start", anta::StateKind::kInput);
  const auto s1 = a.add_state("island", anta::StateKind::kInput);  // unreachable
  const auto s2 = a.add_state("trap", anta::StateKind::kInput);    // dead end
  const auto s3 = a.add_state("done", anta::StateKind::kFinal);
  a.set_initial(s0);
  a.add_receive(s0, s2, sim::ProcessId(0), "x");
  a.add_receive(s0, s3, sim::ProcessId(0), "y");
  a.add_receive(s2, s2, sim::ProcessId(0), "loop");
  a.add_receive(s1, s3, sim::ProcessId(0), "z");
  a.validate();
  const auto report = anta::analyze(a);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.unreachable.size(), 1u);
  EXPECT_EQ(report.unreachable[0], s1);
  ASSERT_EQ(report.dead_ends.size(), 1u);
  EXPECT_EQ(report.dead_ends[0], s2);
}

}  // namespace
}  // namespace xcp
