// Cross-chain deals [3]: matrix/digraph structure and the two commit
// protocols, including the Sec. 5 payment-vs-deal relations.

#include <gtest/gtest.h>

#include "deals/certified_commit.hpp"
#include "deals/deal_matrix.hpp"
#include "deals/digraph.hpp"
#include "deals/timelock_commit.hpp"

namespace xcp::deals {
namespace {

TEST(Digraph, TarjanSccOnCycleAndPath) {
  Digraph cycle(4);
  for (int i = 0; i < 4; ++i) cycle.add_edge(i, (i + 1) % 4);
  EXPECT_TRUE(cycle.strongly_connected());
  EXPECT_EQ(cycle.scc_count(), 1);

  Digraph path(4);
  for (int i = 0; i < 3; ++i) path.add_edge(i, i + 1);
  EXPECT_FALSE(path.strongly_connected());
  EXPECT_EQ(path.scc_count(), 4);
}

TEST(Digraph, BfsDepthsAndDiameter) {
  Digraph g(5);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  const auto d = g.bfs_depths(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(g.bfs_depths(4)[0], -1);  // unreachable backwards
  EXPECT_EQ(g.eccentricity(0), 4);
}

TEST(DealMatrix, PaymentPathIsNeverWellFormed) {
  // Sec. 5: the Fig. 1 payment graph is a path — not strongly connected —
  // so [3]'s correctness theorems never apply to it.
  for (int n = 1; n <= 8; ++n) {
    std::vector<Amount> hops(static_cast<std::size_t>(n),
                             Amount(100, Currency::generic()));
    const DealMatrix m = DealMatrix::from_payment_path(hops);
    EXPECT_FALSE(m.well_formed()) << "n=" << n;
  }
}

TEST(DealMatrix, SwapCycleIsWellFormed) {
  for (int p = 2; p <= 6; ++p) {
    EXPECT_TRUE(DealMatrix::swap_cycle(p, Amount(5, Currency::btc())).well_formed())
        << p;
  }
}

TEST(DealMatrix, PayoffAcceptability) {
  DealMatrix m = DealMatrix::swap_cycle(2, Amount(100, Currency::generic()));
  // all-in: party 0 pays 100 and receives 100 -> net 0.
  EXPECT_TRUE(m.payoff_acceptable(0, {{Currency::generic(), 0}}));
  // nothing lost: net 0 without receiving is also net >= 0.
  EXPECT_TRUE(m.payoff_acceptable(0, {{Currency::generic(), 0}}));
  // lost 100 without the counter-transfer: unacceptable.
  EXPECT_FALSE(m.payoff_acceptable(0, {{Currency::generic(), -100}}));
}

TEST(TimelockDeal, WellFormedCycleAllCompliantCommits) {
  TimelockDealConfig cfg;
  cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
  cfg.seed = 5;
  const auto result = run_timelock_deal(cfg);
  EXPECT_TRUE(result.well_formed);
  EXPECT_EQ(result.transfers_completed, 4) << result.summary();
  EXPECT_EQ(result.transfers_refunded, 0);
  EXPECT_TRUE(result.all_or_nothing);
  for (const auto& p : result.parties) {
    EXPECT_TRUE(p.payoff_acceptable) << result.summary();
  }
}

TEST(TimelockDeal, NonEscrowingPartyLeadsToFullRefund) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TimelockDealConfig cfg;
    cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
    cfg.seed = seed;
    cfg.behaviours = {PartyBehaviour::kCompliant, PartyBehaviour::kNoEscrow};
    const auto result = run_timelock_deal(cfg);
    EXPECT_EQ(result.transfers_completed, 0) << result.summary();
    EXPECT_EQ(result.transfers_refunded, 3) << result.summary();
    EXPECT_TRUE(result.all_or_nothing) << result.summary();
  }
}

TEST(TimelockDeal, PaymentPathRunsButGivesAliceNoCertificate) {
  // The deal protocols move the money of a payment, but there is no chi:
  // the source party ends committed with no proof-of-payment object, which
  // is why a payment is not a special case of a deal (Sec. 5).
  TimelockDealConfig cfg;
  cfg.deal = DealMatrix::from_payment_path(
      {Amount(110, Currency::generic()), Amount(100, Currency::generic())});
  cfg.seed = 3;
  const auto result = run_timelock_deal(cfg);
  EXPECT_FALSE(result.well_formed);
  EXPECT_EQ(result.transfers_completed, 2) << result.summary();
  // Party 0 (Alice) paid and the protocol handed her nothing back — in deal
  // semantics that is her acceptable "all in" payoff; payment-CS1 would
  // require a certificate, which the deal protocol has no notion of.
  EXPECT_LT(result.parties[0].net_by_currency[0].second, 0);
  EXPECT_TRUE(result.parties[0].payoff_acceptable);
}

TEST(TimelockDeal, RogueLeaderCannotHurtCompliantParties) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TimelockDealConfig cfg;
    cfg.deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
    cfg.seed = seed;
    cfg.behaviours = {PartyBehaviour::kRogueLeader};
    const auto result = run_timelock_deal(cfg);
    for (const auto& p : result.parties) {
      if (p.compliant) {
        EXPECT_TRUE(p.payoff_acceptable)
            << "seed=" << seed << "\n" << result.summary();
      }
    }
  }
}

TEST(CertifiedDeal, CommitsWhenAllCompliantAndPatient) {
  CertifiedDealConfig cfg;
  cfg.deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
  cfg.seed = 7;
  cfg.env.gst = TimePoint::origin() + Duration::seconds(1);
  cfg.patience = Duration::seconds(30);
  const auto result = run_certified_deal(cfg);
  EXPECT_TRUE(result.committed) << result.summary();
  EXPECT_TRUE(result.safety_holds);
  EXPECT_TRUE(result.no_asset_stuck);
  EXPECT_EQ(result.transfers_completed, 3);
}

TEST(CertifiedDeal, CrashedPartyYieldsAbortWithSafety) {
  CertifiedDealConfig cfg;
  cfg.deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
  cfg.seed = 8;
  cfg.crashed_parties = {1};
  cfg.patience = Duration::seconds(10);
  const auto result = run_certified_deal(cfg);
  EXPECT_TRUE(result.aborted) << result.summary();
  EXPECT_TRUE(result.safety_holds) << result.summary();
  EXPECT_TRUE(result.no_asset_stuck) << result.summary();
}

TEST(CertifiedDeal, ImpatienceCostsStrongLiveness) {
  // Everyone compliant, but patience shorter than pre-GST chaos: the deal
  // may abort — the all-abort outcome [3] accepts but strong liveness
  // forbids. This is the structural gap the paper's Thm 3 closes with
  // customer-controlled patience.
  int aborts = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CertifiedDealConfig cfg;
    cfg.deal = DealMatrix::swap_cycle(3, Amount(100, Currency::generic()));
    cfg.seed = seed;
    cfg.env.gst = TimePoint::origin() + Duration::seconds(30);
    cfg.env.pre_gst_typical = Duration::seconds(10);
    cfg.patience = Duration::seconds(2);
    const auto result = run_certified_deal(cfg);
    EXPECT_TRUE(result.safety_holds) << result.summary();
    if (result.aborted) ++aborts;
  }
  EXPECT_GT(aborts, 0) << "expected some all-abort runs under pre-GST chaos";
}

}  // namespace
}  // namespace xcp::deals
