// Unit tests for the network layer: delay models (synchrony regimes),
// adversaries and delivery.

#include <gtest/gtest.h>

#include "net/adversary.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace xcp::net {
namespace {

struct PingBody final : MessageBody {
  int value = 0;
  std::string describe() const override { return "ping"; }
};

class Recorder final : public Actor {
 public:
  std::vector<std::pair<std::int64_t, std::string>> received;
  void on_message(const Message& m) override {
    received.emplace_back(global_now().count(), m.kind.str());
  }
  using Actor::send;  // expose for tests
};

// -------------------------------------------------------------- DelayModels

TEST(SynchronousModel, SamplesWithinBounds) {
  SynchronousModel model(Duration::millis(1), Duration::millis(10));
  Rng rng(3);
  Message m;
  for (int i = 0; i < 500; ++i) {
    const Duration d = model.sample(m, TimePoint::origin(), rng);
    EXPECT_GE(d, Duration::millis(1));
    EXPECT_LE(d, Duration::millis(10));
  }
  EXPECT_EQ(model.known_bound()->count(), Duration::millis(10).count());
  EXPECT_EQ(model.latest_delivery(m, TimePoint::micros(5)).count(),
            (TimePoint::micros(5) + Duration::millis(10)).count());
}

TEST(PartialSynchronyModel, RespectsGstContract) {
  const TimePoint gst = TimePoint::origin() + Duration::seconds(10);
  PartialSynchronyModel model(gst, Duration::millis(100), Duration::seconds(5));
  Message m;
  // Sent before GST: must be delivered by GST + delta.
  EXPECT_EQ(model.latest_delivery(m, TimePoint::origin()).count(),
            (gst + Duration::millis(100)).count());
  // Sent after GST: within delta of sending.
  const TimePoint late = gst + Duration::seconds(1);
  EXPECT_EQ(model.latest_delivery(m, late).count(),
            (late + Duration::millis(100)).count());
  // No bound is known to protocols.
  EXPECT_FALSE(model.known_bound().has_value());
  // Samples are always legal.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const TimePoint sent = TimePoint::micros(rng.next_int(0, 20'000'000));
    const Duration d = model.sample(m, sent, rng);
    EXPECT_LE((sent + d).count(), model.latest_delivery(m, sent).count());
  }
}

TEST(AsynchronousModel, FiniteButHeavyTailed) {
  AsynchronousModel model(Duration::millis(10), Duration::seconds(60));
  Rng rng(7);
  Message m;
  Duration max_seen = Duration::zero();
  for (int i = 0; i < 2000; ++i) {
    const Duration d = model.sample(m, TimePoint::origin(), rng);
    EXPECT_GT(d, Duration::zero());
    EXPECT_LE(d, Duration::seconds(60));
    max_seen = std::max(max_seen, d);
  }
  // The doubling tail should reach well past the typical delay.
  EXPECT_GT(max_seen, Duration::millis(40));
}

// ------------------------------------------------------------------ Network

TEST(Network, DeliversWithinModelBounds) {
  sim::Simulator sim(11);
  Network net(sim, std::make_unique<SynchronousModel>(Duration::millis(1),
                                                      Duration::millis(10)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  net.attach(a);
  net.attach(b);
  sim.schedule_at(TimePoint::origin(),
                  [&] { net.send(a.id(), b.id(), "ping", nullptr); });
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GE(b.received[0].first, Duration::millis(1).count());
  EXPECT_LE(b.received[0].first, Duration::millis(10).count());
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(Network, MessagesToUnattachedIdsDropped) {
  sim::Simulator sim(11);
  Network net(sim, std::make_unique<SynchronousModel>(Duration::millis(1),
                                                      Duration::millis(2)));
  auto& a = sim.spawn<Recorder>("a");
  net.attach(a);
  sim.schedule_at(TimePoint::origin(),
                  [&] { net.send(a.id(), sim::ProcessId(99), "ping", nullptr); });
  sim.run();
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(Network, DropProbabilityLosesMessages) {
  sim::Simulator sim(13);
  Network net(sim, std::make_unique<SynchronousModel>(Duration::millis(1),
                                                      Duration::millis(2)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  net.attach(a);
  net.attach(b);
  net.set_drop_probability(0.5);
  sim.schedule_at(TimePoint::origin(), [&] {
    for (int i = 0; i < 200; ++i) net.send(a.id(), b.id(), "ping", nullptr);
  });
  sim.run();
  EXPECT_GT(net.stats().messages_dropped, 50u);
  EXPECT_GT(net.stats().messages_delivered, 50u);
}

TEST(Network, BodySharedAcrossDeliveries) {
  sim::Simulator sim(17);
  Network net(sim, std::make_unique<SynchronousModel>(Duration::millis(1),
                                                      Duration::millis(2)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  net.attach(a);
  net.attach(b);
  auto body = std::make_shared<PingBody>();
  body->value = 42;
  sim.schedule_at(TimePoint::origin(), [&] {
    net.send(a.id(), b.id(), "ping", body);
  });
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(body.use_count(), 1);  // network released its reference
}

// --------------------------------------------------------------- Adversary

TEST(RuleBasedAdversary, HoldsMatchingMessagesUntilRelease) {
  sim::Simulator sim(19);
  Network net(sim, std::make_unique<PartialSynchronyModel>(
                       TimePoint::origin() + Duration::seconds(100),
                       Duration::millis(10), Duration::millis(10)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  net.attach(a);
  net.attach(b);

  RuleBasedAdversary adv;
  adv.hold_until(RuleBasedAdversary::kind_is("chi"),
                 TimePoint::origin() + Duration::seconds(5));
  net.set_adversary(&adv);

  sim.schedule_at(TimePoint::origin(), [&] {
    net.send(a.id(), b.id(), "chi", nullptr);
    net.send(a.id(), b.id(), "other", nullptr);
  });
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  // "other" got the model's fast default; "chi" was held ~5s.
  std::int64_t chi_at = 0;
  std::int64_t other_at = 0;
  for (const auto& [at, kind] : b.received) {
    (kind == "chi" ? chi_at : other_at) = at;
  }
  EXPECT_GE(chi_at, Duration::seconds(5).count());
  EXPECT_LE(other_at, Duration::millis(20).count());
}

TEST(RuleBasedAdversary, ClampedToSynchronyEnvelope) {
  // Under the *synchronous* model the adversary cannot stretch delivery
  // beyond delta_max: synchrony is a property of the environment, not a
  // courtesy of the adversary.
  sim::Simulator sim(23);
  Network net(sim, std::make_unique<SynchronousModel>(Duration::millis(1),
                                                      Duration::millis(10)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  net.attach(a);
  net.attach(b);
  RuleBasedAdversary adv;
  adv.hold_until(RuleBasedAdversary::kind_is("chi"),
                 TimePoint::origin() + Duration::seconds(60));
  net.set_adversary(&adv);
  sim.schedule_at(TimePoint::origin(),
                  [&] { net.send(a.id(), b.id(), "chi", nullptr); });
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_LE(b.received[0].first, Duration::millis(10).count());
}

TEST(RuleBasedAdversary, PredicatesCompose) {
  Message m;
  m.from = sim::ProcessId(1);
  m.to = sim::ProcessId(2);
  m.kind = "chi";
  const auto pred = RuleBasedAdversary::all_of(
      {RuleBasedAdversary::kind_is("chi"),
       RuleBasedAdversary::to_process(sim::ProcessId(2)),
       RuleBasedAdversary::from_process(sim::ProcessId(1))});
  EXPECT_TRUE(pred(m));
  m.kind = "other";
  EXPECT_FALSE(pred(m));
}

TEST(PartitionAdversary, HoldsCrossCutTrafficUntilHeal) {
  sim::Simulator sim(29);
  Network net(sim, std::make_unique<PartialSynchronyModel>(
                       TimePoint::origin() + Duration::seconds(100),
                       Duration::millis(10), Duration::millis(10)));
  auto& a = sim.spawn<Recorder>("a");
  auto& b = sim.spawn<Recorder>("b");
  auto& c = sim.spawn<Recorder>("c");
  net.attach(a);
  net.attach(b);
  net.attach(c);
  // a | {b, c}: a is alone in group A until t = 3s.
  PartitionAdversary adv([&](sim::ProcessId p) { return p == a.id(); },
                         TimePoint::origin() + Duration::seconds(3));
  net.set_adversary(&adv);
  sim.schedule_at(TimePoint::origin(), [&] {
    net.send(a.id(), b.id(), "x", nullptr);   // crosses the cut
    net.send(b.id(), c.id(), "y", nullptr);   // inside group B
  });
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_GE(b.received[0].first, Duration::seconds(3).count());
  EXPECT_LE(c.received[0].first, Duration::millis(20).count());
}

}  // namespace
}  // namespace xcp::net
