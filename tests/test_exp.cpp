// Experiment harness tests: scenario presets, parallel sweeps and the
// property-matrix runner cells used by the benches.

#include <gtest/gtest.h>

#include <atomic>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace xcp::exp {
namespace {

TEST(Scenario, ConformingEnvMatchesAssumptions) {
  const auto timing = default_timing();
  const auto env = conforming_env(timing);
  EXPECT_EQ(env.synchrony, proto::SynchronyKind::kSynchronous);
  EXPECT_EQ(env.delta_max.count(), timing.delta_max.count());
  EXPECT_DOUBLE_EQ(env.actual_rho, timing.rho);
}

TEST(Scenario, PartialEnvHasGst) {
  const auto env = partial_env(default_timing(), 7, Duration::millis(300));
  EXPECT_EQ(env.synchrony, proto::SynchronyKind::kPartiallySynchronous);
  EXPECT_EQ((env.gst - TimePoint::origin()).count(),
            Duration::seconds(7).count());
}

TEST(Sweep, ReturnsResultsInSeedOrder) {
  const auto fn = [](std::uint64_t seed) { return seed * 10; };
  const auto results = parallel_sweep<std::uint64_t>(5, 8, fn, 4);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(results[i], (5 + i) * 10);
}

TEST(Sweep, ActuallyRunsEverySeedOnce) {
  std::atomic<int> calls{0};
  const auto fn = [&calls](std::uint64_t) { return ++calls; };
  const auto results = parallel_sweep<int>(1, 17, fn, 3);
  EXPECT_EQ(calls.load(), 17);
  EXPECT_EQ(results.size(), 17u);
}

TEST(Sweep, BoolResultsAreRaceFree) {
  // vector<bool> results used to be assembled on the calling thread; the
  // sharded sweep writes into one plain slot per seed instead, so bool
  // sweeps stay legal under any worker count.
  const auto fn = [](std::uint64_t seed) { return seed % 3 == 0; };
  const auto results = parallel_sweep<bool>(0, 64, fn, 4);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i % 3 == 0);
}

TEST(Sweep, PropagatesExceptions) {
  const auto fn = [](std::uint64_t seed) -> int {
    if (seed == 9) throw std::runtime_error("seed 9 exploded");
    return static_cast<int>(seed);
  };
  EXPECT_THROW(parallel_sweep<int>(1, 16, fn, 4), std::runtime_error);
  EXPECT_THROW(parallel_sweep<int>(1, 16, fn, 1), std::runtime_error);
}

TEST(Sweep, CountWhere) {
  std::vector<int> v{1, 2, 3, 4, 5};
  const auto even = [](const int& x) { return x % 2 == 0; };
  EXPECT_EQ(count_where<int>(v, even), 2u);
}

TEST(MatrixRunner, TimeBoundedUnderSynchronyIsClean) {
  const auto cell = run_matrix_cell(ProtocolKind::kTimeBounded,
                                    Regime::kSynchronyConforming, 2, 6);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_EQ(cell.termination_failures, 0u);
  EXPECT_EQ(cell.liveness_failures, 0u);
}

TEST(MatrixRunner, TimeBoundedUnderGriefingAdversaryLosesProgress) {
  const auto cell = run_matrix_cell(
      ProtocolKind::kTimeBounded, Regime::kPartialSynchronyAdversarial, 2, 4);
  // Thm 2's shape: safety survives, but termination/liveness cannot.
  EXPECT_EQ(cell.safety_violations, 0u)
      << (cell.example_violations.empty() ? ""
                                          : cell.example_violations.front());
  EXPECT_EQ(cell.liveness_failures, cell.runs);
  EXPECT_GT(cell.termination_failures, 0u);
}

TEST(MatrixRunner, WeakTrustedSurvivesAdversarialPartialSynchrony) {
  const auto cell = run_matrix_cell(
      ProtocolKind::kWeakTrusted, Regime::kPartialSynchronyAdversarial, 2, 4);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_EQ(cell.termination_failures, 0u);
  EXPECT_EQ(cell.liveness_failures, 0u);
}

TEST(MatrixRunner, AtomicLosesLivenessUnderPartialSynchrony) {
  const auto cell = run_matrix_cell(ProtocolKind::kInterledgerAtomic,
                                    Regime::kPartialSynchrony, 2, 6);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_GT(cell.liveness_failures, 0u);
}

}  // namespace
}  // namespace xcp::exp

#include "exp/stats.hpp"

namespace xcp::exp {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Summary, EmptyAndRangeErrors) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(101), std::logic_error);
}

}  // namespace
}  // namespace xcp::exp
