// Experiment harness tests: scenario presets, parallel sweeps and the
// property-matrix runner cells used by the benches.

#include <gtest/gtest.h>

#include <atomic>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace xcp::exp {
namespace {

TEST(Scenario, ConformingEnvMatchesAssumptions) {
  const auto timing = default_timing();
  const auto env = conforming_env(timing);
  EXPECT_EQ(env.synchrony, proto::SynchronyKind::kSynchronous);
  EXPECT_EQ(env.delta_max.count(), timing.delta_max.count());
  EXPECT_DOUBLE_EQ(env.actual_rho, timing.rho);
}

TEST(Scenario, PartialEnvHasGst) {
  const auto env = partial_env(default_timing(), 7, Duration::millis(300));
  EXPECT_EQ(env.synchrony, proto::SynchronyKind::kPartiallySynchronous);
  EXPECT_EQ((env.gst - TimePoint::origin()).count(),
            Duration::seconds(7).count());
}

TEST(Sweep, ReturnsResultsInSeedOrder) {
  const auto fn = [](std::uint64_t seed) { return seed * 10; };
  const auto results = parallel_sweep<std::uint64_t>(5, 8, fn, 4);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(results[i], (5 + i) * 10);
}

TEST(Sweep, ActuallyRunsEverySeedOnce) {
  std::atomic<int> calls{0};
  const auto fn = [&calls](std::uint64_t) { return ++calls; };
  const auto results = parallel_sweep<int>(1, 17, fn, 3);
  EXPECT_EQ(calls.load(), 17);
  EXPECT_EQ(results.size(), 17u);
}

TEST(Sweep, BoolResultsAreRaceFree) {
  // vector<bool> results used to be assembled on the calling thread; the
  // sharded sweep writes into one plain slot per seed instead, so bool
  // sweeps stay legal under any worker count.
  const auto fn = [](std::uint64_t seed) { return seed % 3 == 0; };
  const auto results = parallel_sweep<bool>(0, 64, fn, 4);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i % 3 == 0);
}

TEST(Sweep, PropagatesExceptions) {
  const auto fn = [](std::uint64_t seed) -> int {
    if (seed == 9) throw std::runtime_error("seed 9 exploded");
    return static_cast<int>(seed);
  };
  EXPECT_THROW(parallel_sweep<int>(1, 16, fn, 4), std::runtime_error);
  EXPECT_THROW(parallel_sweep<int>(1, 16, fn, 1), std::runtime_error);
}

TEST(Sweep, CountWhere) {
  std::vector<int> v{1, 2, 3, 4, 5};
  const auto even = [](const int& x) { return x % 2 == 0; };
  EXPECT_EQ(count_where<int>(v, even), 2u);
}

TEST(MatrixRunner, TimeBoundedUnderSynchronyIsClean) {
  const auto cell = run_matrix_cell(ProtocolKind::kTimeBounded,
                                    Regime::kSynchronyConforming, 2, 6);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_EQ(cell.termination_failures, 0u);
  EXPECT_EQ(cell.liveness_failures, 0u);
}

TEST(MatrixRunner, TimeBoundedUnderGriefingAdversaryLosesProgress) {
  const auto cell = run_matrix_cell(
      ProtocolKind::kTimeBounded, Regime::kPartialSynchronyAdversarial, 2, 4);
  // Thm 2's shape: safety survives, but termination/liveness cannot.
  EXPECT_EQ(cell.safety_violations, 0u)
      << (cell.example_violations.empty() ? ""
                                          : cell.example_violations.front());
  EXPECT_EQ(cell.liveness_failures, cell.runs);
  EXPECT_GT(cell.termination_failures, 0u);
}

TEST(MatrixRunner, WeakTrustedSurvivesAdversarialPartialSynchrony) {
  const auto cell = run_matrix_cell(
      ProtocolKind::kWeakTrusted, Regime::kPartialSynchronyAdversarial, 2, 4);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_EQ(cell.termination_failures, 0u);
  EXPECT_EQ(cell.liveness_failures, 0u);
}

TEST(MatrixRunner, AtomicLosesLivenessUnderPartialSynchrony) {
  const auto cell = run_matrix_cell(ProtocolKind::kInterledgerAtomic,
                                    Regime::kPartialSynchrony, 2, 6);
  EXPECT_EQ(cell.safety_violations, 0u);
  EXPECT_GT(cell.liveness_failures, 0u);
}

// ------------------------------------------------------ streaming sweeps

TEST(SweepAccumulate, MatchesSequentialFold) {
  // Sum-style accumulators must be bit-identical to a sequential fold for
  // any worker count (worker-local accs, order-insensitive merge).
  struct Sum {
    std::uint64_t total = 0;
    std::size_t n = 0;
    void merge(Sum&& o) {
      total += o.total;
      n += o.n;
    }
  };
  const auto fn = [](std::uint64_t seed, Sum& acc) {
    acc.total += seed * seed;
    ++acc.n;
  };
  Sum expect;
  for (std::uint64_t s = 3; s < 3 + 200; ++s) fn(s, expect);
  for (unsigned workers : {1u, 2u, 3u, 5u, 8u}) {
    const Sum got = sweep_accumulate<Sum>(3, 200, fn, workers);
    EXPECT_EQ(got.total, expect.total) << workers;
    EXPECT_EQ(got.n, expect.n) << workers;
  }
}

TEST(SweepAccumulate, PropagatesExceptions) {
  struct Noop {
    void merge(Noop&&) {}
  };
  const auto fn = [](std::uint64_t seed, Noop&) {
    if (seed == 7) throw std::runtime_error("seed 7 exploded");
  };
  EXPECT_THROW(sweep_accumulate<Noop>(1, 16, fn, 4), std::runtime_error);
  EXPECT_THROW(sweep_accumulate<Noop>(1, 16, fn, 1), std::runtime_error);
}

/// Byte-level equality of two MatrixCells.
void expect_cells_identical(const MatrixCell& a, const MatrixCell& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.liveness_failures, b.liveness_failures);
  ASSERT_EQ(a.example_violations.size(), b.example_violations.size());
  for (std::size_t i = 0; i < a.example_violations.size(); ++i) {
    EXPECT_EQ(a.example_violations[i], b.example_violations[i]) << i;
  }
}

TEST(MatrixRunner, StreamingMatchesBufferedReference) {
  // The streaming fold (worker-local accumulators, no buffered RunRecords)
  // must produce byte-identical cells to the buffered reference — counts
  // *and* the capped example-violation list, which exercises the
  // (seed, ordinal)-ordered merge. The interledger-atomic cell under
  // partial synchrony reliably produces violations to compare.
  const struct {
    ProtocolKind protocol;
    Regime regime;
  } cells[] = {
      {ProtocolKind::kTimeBounded, Regime::kSynchronyConforming},
      {ProtocolKind::kInterledgerAtomic, Regime::kPartialSynchrony},
      {ProtocolKind::kUniversalNaive, Regime::kSynchronyHighDrift},
  };
  for (const auto& c : cells) {
    const auto streamed = run_matrix_cell(c.protocol, c.regime, 2, 6);
    const auto buffered = run_matrix_cell_buffered(c.protocol, c.regime, 2, 6);
    expect_cells_identical(streamed, buffered);
  }
}

TEST(MatrixRunner, OnlineVerdictsMatchPostMortemAcrossTheoremMatrix) {
  // The acceptance differential: every (protocol, regime) cell of the
  // theorem matrix, each seed run twice — once stopped at its deciding
  // event, once to the full horizon — with online verdicts required to
  // equal the post-mortem checkers event-for-event (the runner throws on
  // any divergence).
  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kUniversalNaive,    ProtocolKind::kTimeBounded,
      ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
      ProtocolKind::kWeakContract,      ProtocolKind::kWeakCommittee};
  const std::vector<Regime> regimes{
      Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
      Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial};
  for (ProtocolKind p : protocols) {
    for (Regime r : regimes) {
      const auto cell = run_matrix_cell_differential(p, r, 2, 3);
      EXPECT_EQ(cell.runs, 3u);
    }
  }
}

TEST(MatrixRunner, EarlyStopCellMatchesFullHorizonCell) {
  // Whole-cell equality (verdict counters AND the capped violation-example
  // list) between the early-stopping default and the watch-only full
  // horizon. The adversarial atomic cell reliably produces violations, so
  // the example strings exercise the frozen-at-stop holdings too.
  const struct {
    ProtocolKind protocol;
    Regime regime;
  } cells[] = {
      {ProtocolKind::kWeakContract, Regime::kSynchronyConforming},
      {ProtocolKind::kInterledgerAtomic, Regime::kPartialSynchrony},
      {ProtocolKind::kWeakCommittee, Regime::kPartialSynchronyAdversarial},
      {ProtocolKind::kUniversalNaive, Regime::kSynchronyHighDrift},
  };
  for (const auto& c : cells) {
    CellOptions stop;  // default: online + early stop
    CellOptions watch;
    watch.online.early_stop = false;
    const auto early = run_matrix_cell(c.protocol, c.regime, 2, 5, 1, stop);
    const auto full = run_matrix_cell(c.protocol, c.regime, 2, 5, 1, watch);
    expect_cells_identical(early, full);
    EXPECT_EQ(full.early_stops, 0u);
    // Early termination must never execute more events than the full run.
    EXPECT_LE(early.events_total, full.events_total);
  }
}

TEST(Sweep, PinnedWorkersProduceIdenticalResults) {
  // Worker pinning is a scheduling hint, never a semantics change: the
  // same sweep with pin_workers on and off must produce identical results
  // (and the option must be restorable).
  auto& pool = detail::SweepPool::instance();
  const auto saved = pool.options();
  const auto fn = [](std::uint64_t seed) { return seed * seed + 1; };
  const auto unpinned = parallel_sweep<std::uint64_t>(1, 64, fn, 4);
  detail::SweepPool::Options pin;
  pin.pin_workers = true;
  pool.set_options(pin);
  const auto pinned = parallel_sweep<std::uint64_t>(1, 64, fn, 4);
  pool.set_options(saved);
  EXPECT_EQ(pinned, unpinned);
  EXPECT_FALSE(pool.options().pin_workers);
}

TEST(MatrixRunner, StreamingCellIsWorkerCountInvariant) {
  // Same cell computed with the pool free to shard vs. forced inline:
  // results must not depend on sharding. run_matrix_cell has no workers
  // knob by design, so pin the inline case by nesting it inside a
  // *pooled* outer sweep (2 seeds, 2 workers — the w==1 shortcut skips
  // the pool and would leave the nested sweep free to shard): every
  // draining thread is marked in-sweep, so each nested cell runs on the
  // single-threaded inline path.
  const auto nested = parallel_sweep<MatrixCell>(
      0, 2,
      [](std::uint64_t) {
        return run_matrix_cell(ProtocolKind::kInterledgerAtomic,
                               Regime::kPartialSynchrony, 2, 6);
      },
      2);
  const auto direct = run_matrix_cell(ProtocolKind::kInterledgerAtomic,
                                      Regime::kPartialSynchrony, 2, 6);
  expect_cells_identical(nested[0], direct);
  expect_cells_identical(nested[1], direct);
}

}  // namespace
}  // namespace xcp::exp

#include "exp/stats.hpp"

namespace xcp::exp {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Summary, EmptyAndRangeErrors) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(101), std::logic_error);
}

}  // namespace
}  // namespace xcp::exp
