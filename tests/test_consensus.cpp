// Unit tests for the notary-committee agreement: agreement/validity/
// termination under partial synchrony, Byzantine tolerance, quorum
// certificate assembly, and the validity rules.

#include <gtest/gtest.h>

#include "consensus/notary.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "proto/bodies.hpp"
#include "sim/simulator.hpp"

namespace xcp::consensus {
namespace {

struct Rig {
  explicit Rig(int m, std::uint64_t seed, TimePoint gst,
               int byzantine = 0,
               NotaryBehaviour byz = NotaryBehaviour::kSilent) {
    sim = std::make_unique<sim::Simulator>(seed);
    net = std::make_unique<net::Network>(
        *sim, std::make_unique<net::PartialSynchronyModel>(
                  gst, Duration::millis(50), Duration::millis(500)),
        &trace);
    keys = std::make_unique<crypto::KeyRegistry>(seed);

    config = std::make_shared<CommitteeConfig>();
    config->instance = 5;
    config->committee_identity = sim::ProcessId(900'000);
    config->base_round = Duration::millis(300);

    // Application identities (not spawned; they only sign statements).
    escrow_id = sim::ProcessId(100);
    customer_id = sim::ProcessId(101);
    bob_id = sim::ProcessId(102);
    config->validity.deal_id = 5;
    config->validity.expected_escrows = {escrow_id};
    config->validity.expected_customers = {customer_id, bob_id};
    config->validity.bob = bob_id;
    config->validity.keys = keys.get();

    for (int i = 0; i < m; ++i) {
      config->members.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
    }
    for (int i = 0; i < m; ++i) {
      auto behaviour = i < byzantine ? byz : NotaryBehaviour::kHonest;
      auto& n = sim->spawn<Notary>("notary_" + std::to_string(i), config,
                                   *keys, behaviour);
      net->attach(n);
      notaries.push_back(&n);
    }
  }

  /// Feeds commit evidence (escrowed + chi) to the given notary indices.
  void feed_commit_evidence(const std::vector<int>& to, Duration at) {
    sim->schedule_at(TimePoint::origin() + at, [this, to] {
      const auto st = make_statement(keys->signer_for(escrow_id), "escrowed",
                                     5, 0);
      auto chi_body = std::make_shared<proto::CertMsg>();
      chi_body->cert = crypto::make_payment_cert(keys->signer_for(bob_id), 5);
      for (int i : to) {
        deliver(i, "tm_report", make_report_body(st));
        deliver(i, "tm_chi", chi_body);
      }
    });
  }

  void feed_abort_petition(const std::vector<int>& to, Duration at) {
    sim->schedule_at(TimePoint::origin() + at, [this, to] {
      const auto st = make_statement(keys->signer_for(customer_id),
                                     "abort-petition", 5);
      for (int i : to) deliver(i, "tm_report", make_report_body(st));
    });
  }

  void deliver(int notary, const std::string& kind, net::BodyPtr body) {
    net::Message m;
    m.from = sim::ProcessId(12345);
    m.to = notaries[static_cast<std::size_t>(notary)]->id();
    m.kind = kind;
    m.body = std::move(body);
    notaries[static_cast<std::size_t>(notary)]->on_message(m);
  }

  int decided_count(Value v) const {
    int n = 0;
    for (const auto* notary : notaries) {
      n += notary->decision() == std::optional<Value>(v);
    }
    return n;
  }

  props::TraceRecorder trace;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<crypto::KeyRegistry> keys;
  std::shared_ptr<CommitteeConfig> config;
  std::vector<Notary*> notaries;
  sim::ProcessId escrow_id, customer_id, bob_id;
};

TEST(ValidityRules, CommitNeedsFullEvidence) {
  crypto::KeyRegistry keys(3);
  ValidityRules rules;
  rules.deal_id = 5;
  rules.expected_escrows = {sim::ProcessId(1), sim::ProcessId(2)};
  rules.expected_customers = {sim::ProcessId(3)};
  rules.bob = sim::ProcessId(3);
  rules.keys = &keys;

  Justification j;
  EXPECT_FALSE(rules.valid(Value::kCommit, j));  // nothing

  j.chi = crypto::make_payment_cert(keys.signer_for(rules.bob), 5);
  EXPECT_FALSE(rules.valid(Value::kCommit, j));  // chi alone

  j.statements.push_back(
      make_statement(keys.signer_for(sim::ProcessId(1)), "escrowed", 5));
  EXPECT_FALSE(rules.valid(Value::kCommit, j));  // one of two escrows

  j.statements.push_back(
      make_statement(keys.signer_for(sim::ProcessId(2)), "escrowed", 5));
  EXPECT_TRUE(rules.valid(Value::kCommit, j));

  // Wrong-deal chi is rejected.
  Justification wrong = j;
  wrong.chi = crypto::make_payment_cert(keys.signer_for(rules.bob), 6);
  EXPECT_FALSE(rules.valid(Value::kCommit, wrong));
}

TEST(ValidityRules, AbortNeedsCustomerPetition) {
  crypto::KeyRegistry keys(3);
  ValidityRules rules;
  rules.deal_id = 5;
  rules.expected_customers = {sim::ProcessId(3)};
  rules.keys = &keys;

  Justification j;
  EXPECT_FALSE(rules.valid(Value::kAbort, j));
  // Petition from a non-customer is rejected.
  j.statements.push_back(
      make_statement(keys.signer_for(sim::ProcessId(9)), "abort-petition", 5));
  EXPECT_FALSE(rules.valid(Value::kAbort, j));
  j.statements.push_back(
      make_statement(keys.signer_for(sim::ProcessId(3)), "abort-petition", 5));
  EXPECT_TRUE(rules.valid(Value::kAbort, j));
}

TEST(Consensus, AllHonestCommitAfterGst) {
  Rig rig(4, 7, TimePoint::origin() + Duration::millis(500));
  rig.feed_commit_evidence({0, 1, 2, 3}, Duration::millis(100));
  rig.sim->run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_EQ(rig.decided_count(Value::kCommit), 4);
  EXPECT_EQ(rig.decided_count(Value::kAbort), 0);
}

TEST(Consensus, AbortWhenOnlyPetitionArrives) {
  Rig rig(4, 8, TimePoint::origin() + Duration::millis(500));
  rig.feed_abort_petition({0, 1, 2, 3}, Duration::millis(100));
  rig.sim->run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_EQ(rig.decided_count(Value::kAbort), 4);
}

TEST(Consensus, EvidenceAtOnlyOneNotaryStillDecides) {
  // The leader rotates; a notary holding the only copy of the evidence
  // eventually becomes leader (or proposes it into the committee).
  Rig rig(4, 9, TimePoint::origin() + Duration::millis(200));
  rig.feed_commit_evidence({2}, Duration::millis(100));
  rig.sim->run_until(TimePoint::origin() + Duration::seconds(120));
  EXPECT_EQ(rig.decided_count(Value::kCommit), 4);
}

TEST(Consensus, ToleratesSilentMinority) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rig rig(4, seed, TimePoint::origin() + Duration::millis(300), 1,
            NotaryBehaviour::kSilent);
    rig.feed_commit_evidence({1, 2, 3}, Duration::millis(100));
    rig.sim->run_until(TimePoint::origin() + Duration::seconds(120));
    EXPECT_EQ(rig.decided_count(Value::kCommit), 3) << "seed=" << seed;
  }
}

TEST(Consensus, AgreementUnderCommitAbortRaceWithEquivocator) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rig rig(4, seed * 31, TimePoint::origin() + Duration::millis(400), 1,
            NotaryBehaviour::kEquivocator);
    rig.feed_commit_evidence({0, 1, 2, 3}, Duration::millis(100));
    rig.feed_abort_petition({0, 1, 2, 3}, Duration::millis(101));
    rig.sim->run_until(TimePoint::origin() + Duration::seconds(120));
    const int commits = rig.decided_count(Value::kCommit);
    const int aborts = rig.decided_count(Value::kAbort);
    // Agreement among honest notaries: never both values decided.
    EXPECT_TRUE(commits == 0 || aborts == 0)
        << "seed=" << seed << " commits=" << commits << " aborts=" << aborts;
    EXPECT_GE(commits + aborts, 3) << "seed=" << seed;  // honest all decide
  }
}

TEST(Consensus, SilentSupermajorityBlocksDecisionButStaysSafe) {
  // 2 silent of 4 exceeds f = 1: no quorum can form. Nothing must be
  // decided (never a wrong certificate), demonstrating the f < m/3 bound.
  Rig rig(4, 3, TimePoint::origin() + Duration::millis(300), 2,
          NotaryBehaviour::kSilent);
  rig.feed_commit_evidence({2, 3}, Duration::millis(100));
  rig.sim->run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(rig.decided_count(Value::kCommit), 0);
  EXPECT_EQ(rig.decided_count(Value::kAbort), 0);
}

TEST(Consensus, DecisionCertificateVerifies) {
  Rig rig(7, 11, TimePoint::origin() + Duration::millis(300));
  rig.feed_commit_evidence({0, 1, 2, 3, 4, 5, 6}, Duration::millis(100));

  // Capture certificates sent to a fake participant by adding it to notify.
  // (Here we instead re-verify through the notaries' own relay path: run,
  // then check that any decided notary can produce a verifying quorum cert
  // via the trace-decide events and committee parameters.)
  rig.sim->run_until(TimePoint::origin() + Duration::seconds(60));
  ASSERT_EQ(rig.decided_count(Value::kCommit), 7);
  // 2f+1 = 5 precommit signatures over the decision digest must verify.
  const std::uint64_t digest = decision_digest(
      5, rig.config->committee_identity, Value::kCommit);
  (void)digest;  // digest consistency is covered by test_crypto quorum tests
  EXPECT_GE(rig.trace.count_label(props::EventKind::kDecide, "commit"), 1u);
}

}  // namespace
}  // namespace xcp::consensus
