// The remote rung's acceptance suite: HostPool health policy, pooled
// placement + degradation, and the host-churn differential — for every
// host-fault schedule (dead-at-launch, dies-mid-shard, slow-link, flapping,
// partition) and K in {2, 3, 7} hosts, distributed_sweep through the
// FakeRemoteLauncher must produce cells byte-identical to the
// single-process run_matrix_cell, and a sweep whose every host dies
// mid-run must complete via the local / in-process ladder with the loss
// recorded in the DispatchReport.

#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exp/dispatch.hpp"
#include "exp/host_pool.hpp"
#include "exp/remote.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"

namespace xcp::exp {
namespace {

using Millis = std::chrono::milliseconds;

void expect_cells_identical(const MatrixCell& a, const MatrixCell& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.safety_violations, b.safety_violations);
  EXPECT_EQ(a.termination_failures, b.termination_failures);
  EXPECT_EQ(a.liveness_failures, b.liveness_failures);
  EXPECT_EQ(a.early_stops, b.early_stops);
  EXPECT_EQ(a.decided_at_total.count(), b.decided_at_total.count());
  EXPECT_EQ(a.events_total, b.events_total);
  ASSERT_EQ(a.example_violations.size(), b.example_violations.size());
  EXPECT_TRUE(a == b);
}

// ------------------------------------------------------- host inventory

/// Writes a host inventory to a unique temp file; unlinked on destruction.
struct TempHostsFile {
  std::string path;
  explicit TempHostsFile(const std::string& contents) {
    char tmpl[] = "/tmp/xcp_hosts.XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) throw std::runtime_error("mkstemp failed");
    path = tmpl;
    if (::write(fd, contents.data(), contents.size()) !=
        static_cast<ssize_t>(contents.size())) {
      ::close(fd);
      throw std::runtime_error("short write to " + path);
    }
    ::close(fd);
  }
  ~TempHostsFile() { ::unlink(path.c_str()); }
};

TEST(HostsFile, ParsesHostsCommentsAndSlotOverrides) {
  TempHostsFile f(
      "# cluster inventory\n"
      "alpha\n"
      "beta:4\n"
      "\n"
      "   gamma : 1   # trailing comment, padded tokens\n"
      "  \t\n"
      "delta   # default slots\n");
  const auto specs = parse_hosts_file(f.path);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].host, "alpha");
  EXPECT_EQ(specs[0].slots, 0u);
  EXPECT_EQ(specs[1].host, "beta");
  EXPECT_EQ(specs[1].slots, 4u);
  EXPECT_EQ(specs[2].host, "gamma");
  EXPECT_EQ(specs[2].slots, 1u);
  EXPECT_EQ(specs[3].host, "delta");
  EXPECT_EQ(specs[3].slots, 0u);
}

TEST(HostsFile, MalformedEntriesFailLoudlyWithTheLineNumber) {
  const auto error_of = [](const std::string& contents) -> std::string {
    TempHostsFile f(contents);
    try {
      (void)parse_hosts_file(f.path);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  // A typo must fail the run, not silently shrink the pool.
  EXPECT_NE(error_of("alpha\nbeta:two\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of("alpha:0\n").find("line 1"), std::string::npos);
  EXPECT_NE(error_of("alpha:\n").find("line 1"), std::string::npos);
  EXPECT_NE(error_of(":4\n").find("empty host"), std::string::npos);
  EXPECT_THROW((void)parse_hosts_file("/nonexistent/xcp-hosts"),
               std::runtime_error);
}

TEST(HostsFile, SlotOverridesGovernPoolConcurrency) {
  TempHostsFile f("solo:2\n");
  HostPool pool;
  for (const auto& s : parse_hosts_file(f.path)) {
    pool.add_host(s.host, s.slots);
  }
  // Exactly the two inventory slots are acquirable, then the pool is dry.
  EXPECT_EQ(pool.acquire(), std::optional<std::string>("solo"));
  EXPECT_EQ(pool.acquire(), std::optional<std::string>("solo"));
  EXPECT_EQ(pool.acquire(), std::nullopt);
  pool.release("solo", true);
  EXPECT_EQ(pool.acquire(), std::optional<std::string>("solo"));
}

// The violation-producing cell the dispatch suite also differentials on,
// so every accumulator field crosses the wire.
constexpr ProtocolKind kProtocol = ProtocolKind::kInterledgerAtomic;
constexpr Regime kRegime = Regime::kPartialSynchrony;
constexpr int kN = 2;
constexpr std::size_t kSeeds = 5;
constexpr unsigned kShards = 4;

DispatchOptions quick_dispatch() {
  DispatchOptions d;
  d.shard_deadline = Millis(10'000);
  d.term_grace = Millis(200);
  d.max_attempts = 3;
  d.backoff_base = Millis(2);
  d.backoff_cap = Millis(20);
  d.hedge_stragglers = false;
  return d;
}

/// A pool whose faulty hosts sideline themselves fast and stay out.
HostPool churn_pool(std::size_t n_hosts) {
  HostPoolOptions po;
  po.default_slots = 4;
  po.quarantine_after = 2;
  po.quarantine_period = Millis(60'000);  // no re-admission mid-test
  po.blacklist_after = 2;
  HostPool pool(po);
  for (std::size_t i = 0; i < n_hosts; ++i) {
    pool.add_host("host-" + std::to_string(i));
  }
  return pool;
}

std::string worker_or_skip() { return default_worker_path(); }

// ---------------------------------------------------------- HostPool policy

TEST(HostPool, LeastLoadedPlacementWithRegistrationOrderTieBreak) {
  HostPoolOptions po;
  po.default_slots = 2;
  HostPool pool(po);
  pool.add_host("alpha");
  pool.add_host("beta");

  // Ties go to the earlier registration; load balances after that.
  EXPECT_EQ(pool.acquire().value(), "alpha");
  EXPECT_EQ(pool.acquire().value(), "beta");
  EXPECT_EQ(pool.acquire().value(), "alpha");
  EXPECT_EQ(pool.acquire().value(), "beta");
  // All slots busy.
  EXPECT_FALSE(pool.acquire().has_value());
  pool.release("beta", /*success=*/true);
  EXPECT_EQ(pool.acquire().value(), "beta");
}

TEST(HostPool, ConsecutiveFailuresQuarantineAndReadmitOnProbation) {
  HostPoolOptions po;
  po.default_slots = 4;
  po.quarantine_after = 2;
  po.quarantine_period = Millis(50);
  po.blacklist_after = 3;
  HostPool pool(po);
  pool.add_host("alpha");
  pool.add_host("beta");

  ASSERT_EQ(pool.acquire().value(), "alpha");
  pool.release("alpha", false);
  ASSERT_EQ(pool.acquire().value(), "alpha");  // still least-loaded
  pool.release("alpha", false);                // 2nd consecutive -> out

  // Alpha is quarantined: everything lands on beta now.
  EXPECT_EQ(pool.acquire().value(), "beta");
  EXPECT_EQ(pool.stats()[0].state, HostState::kQuarantined);
  EXPECT_EQ(pool.stats()[0].quarantines, 1u);

  // After the period it comes back on probation (failure streak reset,
  // quarantine count kept).
  std::this_thread::sleep_for(Millis(60));
  pool.release("beta", true);
  EXPECT_EQ(pool.acquire().value(), "alpha");
  EXPECT_EQ(pool.stats()[0].state, HostState::kHealthy);
  EXPECT_EQ(pool.stats()[0].consecutive_failures, 0u);
  EXPECT_EQ(pool.stats()[0].quarantines, 1u);
}

TEST(HostPool, RepeatedQuarantineEscalatesToBlacklist) {
  HostPoolOptions po;
  po.default_slots = 4;
  po.quarantine_after = 1;  // every failure quarantines
  po.quarantine_period = Millis(1);
  po.blacklist_after = 2;
  HostPool pool(po);
  pool.add_host("alpha");

  ASSERT_TRUE(pool.acquire().has_value());
  pool.release("alpha", false);  // quarantine #1
  std::this_thread::sleep_for(Millis(5));
  ASSERT_TRUE(pool.acquire().has_value());  // probation
  pool.release("alpha", false);  // quarantine #2 -> blacklist
  EXPECT_EQ(pool.stats()[0].state, HostState::kBlacklisted);
  EXPECT_FALSE(pool.acquire().has_value());
  EXPECT_FALSE(pool.any_usable());
  // Blacklist is permanent: no timed re-admission.
  std::this_thread::sleep_for(Millis(5));
  EXPECT_FALSE(pool.acquire().has_value());
}

TEST(HostPool, SuccessResetsTheFailureStreak) {
  HostPoolOptions po;
  po.quarantine_after = 2;
  HostPool pool(po);
  pool.add_host("alpha");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.acquire().has_value());
    pool.release("alpha", false);
    ASSERT_TRUE(pool.acquire().has_value());
    pool.release("alpha", true);  // never two in a row
  }
  EXPECT_EQ(pool.stats()[0].state, HostState::kHealthy);
  EXPECT_EQ(pool.stats()[0].failures, 8u);
}

TEST(HostPool, NeutralReleaseReturnsTheSlotWithoutTouchingHealth) {
  HostPoolOptions po;
  po.default_slots = 1;
  po.quarantine_after = 1;
  HostPool pool(po);
  pool.add_host("alpha");
  ASSERT_TRUE(pool.acquire().has_value());
  EXPECT_FALSE(pool.acquire().has_value());  // slot taken
  pool.release_neutral("alpha");
  EXPECT_TRUE(pool.acquire().has_value());  // slot back
  EXPECT_EQ(pool.stats()[0].failures, 0u);
  EXPECT_EQ(pool.stats()[0].state, HostState::kHealthy);
}

TEST(HostPool, MarkDeadSkipsTheStreakAndEscalates) {
  HostPoolOptions po;
  po.quarantine_after = 3;
  po.quarantine_period = Millis(60'000);
  po.blacklist_after = 2;
  HostPool pool(po);
  pool.add_host("alpha");
  pool.mark_dead("alpha");  // one call, straight to quarantine
  EXPECT_EQ(pool.stats()[0].state, HostState::kQuarantined);
  pool.mark_dead("alpha");  // repeat offender -> blacklist
  EXPECT_EQ(pool.stats()[0].state, HostState::kBlacklisted);
  EXPECT_FALSE(pool.any_usable());
}

TEST(HostPool, StartupCostKeepsTheWorstAndFeedsTheHeuristic) {
  HostPool pool;
  pool.add_host("fast");
  pool.add_host("slow");
  EXPECT_EQ(pool.max_startup_cost().count(), -1);
  pool.record_startup("fast", Millis(20));
  pool.record_startup("slow", Millis(900));
  pool.record_startup("slow", Millis(400));  // lower later probe: keep max
  EXPECT_EQ(pool.max_startup_cost().count(), 900);

  // 900 ms startup, 50 seeds/s, startup <= 10% of shard runtime:
  // seeds >= 0.9 * 50 / 0.1 = 450.
  EXPECT_EQ(amortized_min_seeds(Millis(900), 50.0, 0.1), 450u);
  EXPECT_EQ(amortized_min_seeds(Millis(-1), 50.0, 0.1), 1u);
  EXPECT_EQ(amortized_min_seeds(Millis(900), 0.0, 0.1), 1u);
  // Tiny startup never forces a floor above one seed.
  EXPECT_EQ(amortized_min_seeds(Millis(1), 1.0, 0.5), 1u);
}

// ------------------------------------------------- the churn differential

struct ChurnCase {
  HostFault fault;
  bool shrinks_deadline;  // partition recovers via the deadline kill
};

class HostChurn : public ::testing::TestWithParam<ChurnCase> {};

// The tentpole acceptance criterion: one faulty host per pool, K in
// {2, 3, 7} hosts, every fault schedule — merged cells must match the
// single-process reference byte-for-byte.
TEST_P(HostChurn, EveryScheduleAndPoolSizeIsByteIdentical) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";
  const ChurnCase c = GetParam();

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  for (const std::size_t hosts : {2u, 3u, 7u}) {
    SCOPED_TRACE(std::string(host_fault_name(c.fault)) + " / hosts=" +
                 std::to_string(hosts));
    HostPool pool = churn_pool(hosts);
    FakeRemoteLauncher launcher(pool, worker);
    launcher.set_fault("host-0", c.fault, /*slow_delay=*/Millis(150));

    DistributedOptions opts;
    opts.worker_path = worker;
    opts.dispatch = quick_dispatch();
    if (c.shrinks_deadline) opts.dispatch.shard_deadline = Millis(500);
    opts.dispatch.launcher = &launcher;
    DispatchReport report;
    opts.report = &report;

    const MatrixCell swept =
        distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
    expect_cells_identical(swept, single);

    EXPECT_EQ(report.shards, kShards);
    // Host rollups made it into the report, one per pool member.
    ASSERT_EQ(report.hosts.size(), hosts);
    std::size_t attempts = 0;
    for (const auto& h : report.hosts) attempts += h.attempts;
    EXPECT_GT(attempts, 0u);
    // Every record names where it ran.
    for (const auto& a : report.attempts) {
      EXPECT_FALSE(a.host.empty()) << "attempt without host attribution";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, HostChurn,
    ::testing::Values(ChurnCase{HostFault::kDeadAtLaunch, false},
                      ChurnCase{HostFault::kDiesMidShard, false},
                      ChurnCase{HostFault::kSlowLink, false},
                      ChurnCase{HostFault::kFlapping, false},
                      ChurnCase{HostFault::kPartition, true}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) {
      std::string name = host_fault_name(info.param.fault);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// A host dying mid-sweep (fault begins at a later launch ordinal) hands
// its remaining work to the survivors; the dead host's quarantine is in
// the rollups and the bytes never change.
TEST(HostChurnMidSweep, HostLossAfterTwoLaunchesReissuesOnSurvivors) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  HostPool pool = churn_pool(2);
  FakeRemoteLauncher launcher(pool, worker);
  // host-0 serves its first two launches with workers that die mid-blob,
  // then drops off the network entirely.
  launcher.set_fault("host-0", HostFault::kDiesMidShard);
  launcher.set_fault_after("host-0", 2, HostFault::kDeadAtLaunch);

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.launcher = &launcher;
  DispatchReport report;
  opts.report = &report;

  const MatrixCell swept =
      distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
  expect_cells_identical(swept, single);

  // The dead host was sidelined, the survivor finished the sweep.
  bool host0_sidelined = false;
  for (const auto& h : report.hosts) {
    if (h.host == "host-0") {
      host0_sidelined = h.quarantines >= 1 || h.blacklisted;
    }
  }
  EXPECT_TRUE(host0_sidelined) << report.to_string();
  EXPECT_EQ(report.fallbacks, 0u);
}

// Violent mid-sweep loss: kill_host() SIGKILLs in-flight workers; the
// crashes are charged to the host and the retries land elsewhere.
TEST(HostChurnMidSweep, KillHostCrashesInFlightAttemptsAndRecovers) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  HostPool pool = churn_pool(3);
  FakeRemoteLauncher launcher(pool, worker);
  // host-0's workers stall (they would time out eventually); killing the
  // host mid-sweep turns them into crashes immediately.
  launcher.set_fault("host-0", HostFault::kPartition);

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.shard_deadline = Millis(5'000);
  opts.dispatch.launcher = &launcher;
  DispatchReport report;
  opts.report = &report;

  // Kill the partitioned host shortly after the sweep starts, from a
  // sidecar thread — the dispatcher sees its workers die as crashes.
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis(300));
    launcher.kill_host("host-0");
  });
  const MatrixCell swept =
      distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
  killer.join();
  expect_cells_identical(swept, single);
  EXPECT_EQ(report.fallbacks, 0u);
}

// The ladder's bottom rungs: every host dead at launch. With local
// degradation the pool empties and the local rung completes the sweep;
// with it disabled the dispatcher's own in-process fallback does.
TEST(HostChurnLadder, AllHostsDeadDegradesToLocalExec) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  HostPool pool = churn_pool(3);
  FakeRemoteLauncher launcher(pool, worker);
  for (int i = 0; i < 3; ++i) {
    launcher.set_fault("host-" + std::to_string(i),
                       HostFault::kDeadAtLaunch);
  }

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.launcher = &launcher;
  DispatchReport report;
  opts.report = &report;

  const MatrixCell swept =
      distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
  expect_cells_identical(swept, single);

  EXPECT_GT(launcher.local_degradations(), 0u);
  EXPECT_EQ(report.fallbacks, 0u) << "local exec, not in-process, serves "
                                     "a dead pool";
  // Every pool member ended sidelined, and the report says so.
  ASSERT_EQ(report.hosts.size(), 3u);
  for (const auto& h : report.hosts) {
    EXPECT_TRUE(h.quarantines >= 1 || h.blacklisted) << h.host;
  }
  // The attempts that completed the sweep ran on the local rung.
  std::size_t local_attempts = 0;
  for (const auto& a : report.attempts) {
    if (a.host == kLocalHostName) ++local_attempts;
  }
  EXPECT_GE(local_attempts, static_cast<std::size_t>(kShards));
}

TEST(HostChurnLadder, AllHostsDyingMidRunFallsThroughToInProcess) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  // Every host accepts launches but its workers die mid-blob — the pool
  // drains by quarantine while attempts burn retry budget. With local
  // degradation off, exhaustion lands on the dispatcher's in-process rung.
  HostPool pool = churn_pool(2);
  FakeRemoteLauncher launcher(pool, worker, /*degrade_to_local=*/false);
  launcher.set_fault("host-0", HostFault::kDiesMidShard);
  launcher.set_fault("host-1", HostFault::kDiesMidShard);

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.launcher = &launcher;
  DispatchReport report;
  opts.report = &report;

  const MatrixCell swept =
      distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
  expect_cells_identical(swept, single);

  // The loss is recorded: crashed attempts, sidelined hosts, and the
  // shards that had to fall back in-process.
  EXPECT_GT(report.crashes + report.launch_failures, 0u);
  EXPECT_GT(report.fallbacks, 0u) << report.to_string();
  for (const auto& h : report.hosts) {
    EXPECT_TRUE(h.quarantines >= 1 || h.blacklisted) << h.host;
  }
}

// ------------------------------------------------- sh-exec RemoteLauncher

TEST(RemoteExec, ShTemplateSweepIsByteIdenticalWithHostRollups) {
  const std::string worker = worker_or_skip();
  if (worker.empty()) GTEST_SKIP() << "xcp_sweep_shard binary not found";

  const MatrixCell single = run_matrix_cell(kProtocol, kRegime, kN, kSeeds);

  HostPool pool;
  pool.add_host("box-a");
  pool.add_host("box-b");
  RemoteLauncher launcher(pool, RemoteOptions::sh_template());
  launcher.probe_hosts();
  // /bin/sh round-trips fast; both hosts must have survived the probe
  // with a measured startup cost.
  for (const HostStats& h : pool.stats()) {
    EXPECT_EQ(h.state, HostState::kHealthy) << h.host;
    EXPECT_GE(h.startup_cost.count(), 0) << h.host;
  }
  EXPECT_GE(launcher.recommended_min_seeds(/*seeds_per_second=*/1000.0), 1u);

  DistributedOptions opts;
  opts.worker_path = worker;
  opts.dispatch = quick_dispatch();
  opts.dispatch.launcher = &launcher;
  DispatchReport report;
  opts.report = &report;

  const MatrixCell swept =
      distributed_sweep(kProtocol, kRegime, kN, kSeeds, kShards, 1, opts);
  expect_cells_identical(swept, single);

  EXPECT_EQ(report.fallbacks, 0u);
  ASSERT_EQ(report.hosts.size(), 2u);
  std::size_t attempts = 0;
  for (const auto& h : report.hosts) {
    attempts += h.attempts;
    EXPECT_GE(h.startup_cost.count(), 0) << h.host;
  }
  EXPECT_EQ(attempts, static_cast<std::size_t>(kShards));
}

TEST(RemoteExec, ProbeMarksDeadHostsBeforeTheyCostAnAttempt) {
  HostPool pool;
  pool.add_host("gone");
  RemoteOptions ro;
  // The probe command fails for every host: the transport "connects" but
  // the far end is broken.
  ro.command_template = {"/bin/sh", "-c", "exit 1 # {host} {cmd}"};
  ro.probe_deadline = Millis(2'000);
  RemoteLauncher launcher(pool, ro);
  launcher.probe_hosts();
  EXPECT_EQ(pool.stats()[0].state, HostState::kQuarantined);
}

TEST(RemoteExec, ShellQuotingSurvivesHostileArguments) {
  // Through a real /bin/sh -c round-trip: the quoted command must
  // reproduce each argument exactly, metacharacters included.
  const std::vector<std::string> args{"printf", "%s\\n", "a b", "it's",
                                     "$(reboot)", "`x`", ";ls", "*"};
  HostPool pool;
  pool.add_host("box");
  RemoteLauncher launcher(pool, RemoteOptions::sh_template());
  const std::string quoted = shell_quote_join(args);
  EXPECT_NE(quoted.find("'it'\\''s'"), std::string::npos) << quoted;

  LocalProcessLauncher local;
  WorkerHandle w = local.launch({"/bin/sh", "-c", quoted});
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(w.stdout_fd, buf, sizeof(buf));
    if (got > 0) {
      out.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      std::this_thread::sleep_for(Millis(5));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;
  }
  local.reap(w);
  ::close(w.stdout_fd);
  ::close(w.stderr_fd);
  EXPECT_EQ(out, "a b\nit's\n$(reboot)\n`x`\n;ls\n*\n");
}

}  // namespace
}  // namespace xcp::exp
