// Unit tests for the ledger and escrow substrate: transfers, receipts,
// conservation, escrow lifecycle.

#include <gtest/gtest.h>

#include "ledger/escrow.hpp"
#include "ledger/ledger.hpp"

namespace xcp::ledger {
namespace {

sim::ProcessId pid(std::uint32_t v) { return sim::ProcessId(v); }
Amount gen(std::int64_t u) { return Amount(u, Currency::generic()); }

TEST(Ledger, MintAndBalance) {
  Ledger l;
  l.mint(pid(1), gen(100));
  l.mint(pid(1), gen(50));
  EXPECT_EQ(l.balance(pid(1), Currency::generic()).units(), 150);
  EXPECT_EQ(l.total_supply(Currency::generic()), 150);
  EXPECT_EQ(l.balance(pid(2), Currency::generic()).units(), 0);
}

TEST(Ledger, TransferMovesValueAndIssuesReceipt) {
  Ledger l;
  l.mint(pid(1), gen(100));
  TransferId tid = kInvalidTransfer;
  ASSERT_TRUE(l.transfer(pid(1), pid(2), gen(30), TimePoint::micros(5), &tid));
  EXPECT_EQ(l.balance(pid(1), Currency::generic()).units(), 70);
  EXPECT_EQ(l.balance(pid(2), Currency::generic()).units(), 30);
  const auto r = l.receipt(tid);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->from, pid(1));
  EXPECT_EQ(r->to, pid(2));
  EXPECT_EQ(r->amount.units(), 30);
  EXPECT_EQ(r->at.count(), 5);
}

TEST(Ledger, OverdraftRejectedWithoutSideEffects) {
  Ledger l;
  l.mint(pid(1), gen(10));
  EXPECT_FALSE(l.transfer(pid(1), pid(2), gen(11), TimePoint::origin()));
  EXPECT_EQ(l.balance(pid(1), Currency::generic()).units(), 10);
  EXPECT_EQ(l.balance(pid(2), Currency::generic()).units(), 0);
  EXPECT_TRUE(l.receipts().empty());
}

TEST(Ledger, RejectsNonPositiveAndSelfTransfers) {
  Ledger l;
  l.mint(pid(1), gen(10));
  EXPECT_FALSE(l.transfer(pid(1), pid(2), gen(0), TimePoint::origin()));
  EXPECT_FALSE(l.transfer(pid(1), pid(2), gen(-5), TimePoint::origin()));
  EXPECT_FALSE(l.transfer(pid(1), pid(1), gen(5), TimePoint::origin()));
}

TEST(Ledger, ConservationAcrossManyTransfers) {
  Ledger l;
  l.mint(pid(0), gen(1000));
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const auto from = pid(static_cast<std::uint32_t>(rng.next_int(0, 4)));
    const auto to = pid(static_cast<std::uint32_t>(rng.next_int(0, 4)));
    const Amount a = gen(rng.next_int(1, 50));
    (void)l.transfer(from, to, a, TimePoint::micros(i));  // may fail; fine
  }
  EXPECT_EQ(l.sum_of_balances(Currency::generic()),
            l.total_supply(Currency::generic()));
}

TEST(Ledger, ReceiptVerification) {
  Ledger l;
  l.mint(pid(1), gen(100));
  TransferId tid = kInvalidTransfer;
  ASSERT_TRUE(l.transfer(pid(1), pid(2), gen(30), TimePoint::origin(), &tid));
  EXPECT_TRUE(l.verify_incoming(tid, pid(2), gen(30)));
  EXPECT_TRUE(l.verify_incoming(tid, pid(2), gen(20)));  // >= expected
  EXPECT_FALSE(l.verify_incoming(tid, pid(2), gen(31)));
  EXPECT_FALSE(l.verify_incoming(tid, pid(3), gen(30)));
  EXPECT_FALSE(l.verify_incoming(tid, pid(2), Amount(30, Currency::usd())));
  EXPECT_FALSE(l.verify_incoming(999, pid(2), gen(30)));
  EXPECT_TRUE(l.verify_exact(tid, pid(1), pid(2), gen(30)));
  EXPECT_FALSE(l.verify_exact(tid, pid(3), pid(2), gen(30)));
}

TEST(Ledger, MultiCurrencyHoldings) {
  Ledger l;
  l.mint(pid(1), Amount(10, Currency::usd()));
  l.mint(pid(1), Amount(5, Currency::btc()));
  const auto h = l.holdings(pid(1));
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].currency(), Currency::usd());  // sorted by currency id
  EXPECT_EQ(h[1].currency(), Currency::btc());
}

// ------------------------------------------------------------------ Escrow

class EscrowFixture : public ::testing::Test {
 protected:
  EscrowFixture() : escrows(ledger) {
    ledger.mint(pid(1), gen(100));
    // Customer 1 deposits 100 at escrow 5, to be paid to customer 2.
    EXPECT_TRUE(
        ledger.transfer(pid(1), pid(5), gen(100), TimePoint::micros(1), &tid));
  }
  Ledger ledger;
  EscrowRegistry escrows{ledger};
  TransferId tid = kInvalidTransfer;
};

TEST_F(EscrowFixture, LockCompleteLifecycle) {
  std::uint64_t deal = 0;
  ASSERT_TRUE(escrows.lock(pid(5), pid(1), pid(2), gen(100), tid,
                           TimePoint::micros(2), &deal));
  EXPECT_EQ(escrows.deal(deal)->state, EscrowState::kLocked);
  ASSERT_TRUE(escrows.complete(deal, TimePoint::micros(3)));
  EXPECT_EQ(escrows.deal(deal)->state, EscrowState::kCompleted);
  EXPECT_EQ(ledger.balance(pid(2), Currency::generic()).units(), 100);
  EXPECT_EQ(ledger.balance(pid(5), Currency::generic()).units(), 0);
}

TEST_F(EscrowFixture, LockRefundLifecycle) {
  std::uint64_t deal = 0;
  ASSERT_TRUE(escrows.lock(pid(5), pid(1), pid(2), gen(100), tid,
                           TimePoint::micros(2), &deal));
  ASSERT_TRUE(escrows.refund(deal, TimePoint::micros(3)));
  EXPECT_EQ(escrows.deal(deal)->state, EscrowState::kRefunded);
  EXPECT_EQ(ledger.balance(pid(1), Currency::generic()).units(), 100);
}

TEST_F(EscrowFixture, DoubleResolutionRejected) {
  std::uint64_t deal = 0;
  ASSERT_TRUE(escrows.lock(pid(5), pid(1), pid(2), gen(100), tid,
                           TimePoint::micros(2), &deal));
  ASSERT_TRUE(escrows.complete(deal, TimePoint::micros(3)));
  EXPECT_FALSE(escrows.complete(deal, TimePoint::micros(4)));
  EXPECT_FALSE(escrows.refund(deal, TimePoint::micros(4)));
  // Money moved exactly once.
  EXPECT_EQ(ledger.balance(pid(2), Currency::generic()).units(), 100);
}

TEST_F(EscrowFixture, LockRequiresRealFunding) {
  // Receipt that doesn't credit the escrow.
  EXPECT_FALSE(escrows.lock(pid(6), pid(1), pid(2), gen(100), tid,
                            TimePoint::micros(2)));
  // Receipt from the wrong depositor.
  EXPECT_FALSE(escrows.lock(pid(5), pid(3), pid(2), gen(100), tid,
                            TimePoint::micros(2)));
  // Unknown receipt id.
  EXPECT_FALSE(escrows.lock(pid(5), pid(1), pid(2), gen(100), 999,
                            TimePoint::micros(2)));
}

TEST_F(EscrowFixture, UnresolvedTracking) {
  std::uint64_t deal = 0;
  ASSERT_TRUE(escrows.lock(pid(5), pid(1), pid(2), gen(100), tid,
                           TimePoint::micros(2), &deal));
  EXPECT_EQ(escrows.unresolved().size(), 1u);
  ASSERT_TRUE(escrows.refund(deal, TimePoint::micros(3)));
  EXPECT_TRUE(escrows.unresolved().empty());
}

TEST(EscrowTrace, EventsRecorded) {
  props::TraceRecorder trace;
  Ledger ledger(&trace);
  EscrowRegistry escrows(ledger, &trace);
  ledger.mint(pid(1), gen(50));
  TransferId tid = kInvalidTransfer;
  ASSERT_TRUE(ledger.transfer(pid(1), pid(5), gen(50), TimePoint::micros(1), &tid));
  std::uint64_t deal = 0;
  ASSERT_TRUE(escrows.lock(pid(5), pid(1), pid(2), gen(50), tid,
                           TimePoint::micros(2), &deal));
  ASSERT_TRUE(escrows.complete(deal, TimePoint::micros(3)));
  EXPECT_EQ(trace.count(props::EventKind::kTransfer), 2u);  // deposit + payout
  EXPECT_EQ(trace.count(props::EventKind::kEscrowLock), 1u);
  EXPECT_EQ(trace.count(props::EventKind::kEscrowComplete), 1u);
}

}  // namespace
}  // namespace xcp::ledger
