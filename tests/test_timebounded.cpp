// End-to-end tests of the time-bounded protocol (Fig. 2 / Thm 1).

#include <gtest/gtest.h>

#include "props/checkers.hpp"
#include "proto/timebounded.hpp"

namespace xcp::proto {
namespace {

TimeBoundedConfig base_config(int n, std::uint64_t seed) {
  TimeBoundedConfig cfg;
  cfg.seed = seed;
  cfg.spec = DealSpec::uniform(/*deal_id=*/7, n, /*base=*/1000, /*commission=*/5);
  cfg.assumed.delta_max = Duration::millis(100);
  cfg.assumed.processing = Duration::millis(5);
  cfg.assumed.rho = 1e-3;
  cfg.assumed.slack = Duration::millis(10);
  cfg.env.synchrony = SynchronyKind::kSynchronous;
  cfg.env.delta_min = Duration::millis(1);
  cfg.env.delta_max = cfg.assumed.delta_max;
  cfg.env.processing = cfg.assumed.processing;
  cfg.env.actual_rho = cfg.assumed.rho;
  cfg.env.clock_offset_max = Duration::millis(50);
  return cfg;
}

TEST(TimeBounded, HappyPathSingleEscrow) {
  const auto record = run_time_bounded(base_config(1, 42));
  EXPECT_TRUE(record.stats.drained);
  EXPECT_TRUE(record.bob_paid());
  // Alice spent v_0, holds chi.
  EXPECT_TRUE(record.alice().received_payment_cert);
  EXPECT_EQ(record.alice().net_units(Currency::generic()), -1000);
  EXPECT_EQ(record.bob().net_units(Currency::generic()), 1000);
  const auto report =
      props::check_definition1(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str();
}

TEST(TimeBounded, HappyPathWithConnectors) {
  const auto record = run_time_bounded(base_config(3, 7));
  EXPECT_TRUE(record.stats.drained);
  EXPECT_TRUE(record.bob_paid());
  // Each connector pockets the commission.
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(record.customer(i).net_units(Currency::generic()), 5)
        << "chloe_" << i;
  }
  // Alice pays base + 2 * commission.
  EXPECT_EQ(record.alice().net_units(Currency::generic()), -1010);
  EXPECT_EQ(record.bob().net_units(Currency::generic()), 1000);
  const auto report =
      props::check_definition1(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str();
}

TEST(TimeBounded, AllPropertiesAcrossSeedsAndSizes) {
  for (int n : {1, 2, 4, 8}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto record = run_time_bounded(base_config(n, seed));
      const auto report =
          props::check_definition1(record, props::CheckOptions{});
      EXPECT_TRUE(report.all_hold())
          << "n=" << n << " seed=" << seed << "\n"
          << report.str() << record.summary();
    }
  }
}

TEST(TimeBounded, TerminationWithinAPrioriBound) {
  const auto record = run_time_bounded(base_config(4, 11));
  ASSERT_TRUE(record.schedule.has_value());
  for (int i = 0; i <= 4; ++i) {
    const auto& c = record.customer(i);
    ASSERT_TRUE(c.terminated) << c.role;
    EXPECT_LE((c.terminated_global - TimePoint::origin()).count(),
              record.schedule->customer_termination_bound(i).count())
        << c.role;
  }
}

TEST(TimeBounded, DeterministicGivenSeed) {
  const auto a = run_time_bounded(base_config(3, 99));
  const auto b = run_time_bounded(base_config(3, 99));
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.end_time.count(), b.stats.end_time.count());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    EXPECT_EQ(a.trace.events()[i].str(), b.trace.events()[i].str()) << i;
  }
}

}  // namespace
}  // namespace xcp::proto

namespace xcp::proto {
namespace {

// --- the impatient protocol variant (Thm 2, option B) ---

TEST(ImpatientVariant, HarmlessUnderConformingSynchrony) {
  // With a give-up window beyond the schedule horizon, the variant behaves
  // exactly like the paper's protocol in conforming environments.
  auto cfg = base_config(3, 17);
  cfg.customer_giveup = TimelockSchedule::drift_compensated(3, cfg.assumed)
                            .horizon() * 2;
  const auto record = run_time_bounded(cfg);
  EXPECT_TRUE(record.bob_paid());
  const auto report = props::check_definition1(record, props::CheckOptions{});
  EXPECT_TRUE(report.all_hold()) << report.str();
  for (const auto& p : record.participants) {
    EXPECT_NE(p.final_state, std::string(kGaveUp)) << p.role;
  }
}

TEST(ImpatientVariant, GivingUpTradesTerminationForCs3) {
  // The Thm 2 adversary strands chloe_1 (chi held to e_0 only: e_1 pays Bob,
  // e_0 refunds Alice). The paper's protocol leaves her waiting forever; the
  // impatient variant terminates her — and the CS3 checker fires.
  auto cfg = base_config(2, 3);
  const auto horizon =
      TimelockSchedule::drift_compensated(2, cfg.assumed).horizon();
  const TimePoint release = TimePoint::origin() + horizon * 3;
  cfg.env.synchrony = SynchronyKind::kPartiallySynchronous;
  cfg.env.gst = release;
  cfg.env.pre_gst_typical = Duration::millis(150);
  cfg.adversary = [release](const Participants& parts,
                            const TimelockSchedule&)
      -> std::unique_ptr<net::Adversary> {
    auto adv = std::make_unique<net::RuleBasedAdversary>();
    adv->hold_until(net::RuleBasedAdversary::all_of(
                        {net::RuleBasedAdversary::kind_is("chi"),
                         net::RuleBasedAdversary::to_process(parts.escrow(0))}),
                    release);
    return adv;
  };
  cfg.customer_giveup = horizon;  // finite patience
  cfg.extra_horizon = horizon * 6;
  const auto record = run_time_bounded(cfg);

  // She terminated (T rescued)...
  const auto& chloe = record.customer(1);
  EXPECT_TRUE(chloe.terminated);
  EXPECT_EQ(chloe.final_state, std::string(kGaveUp));
  // ...but at a loss: the CS3 checker detects the violation.
  const auto cs3 = props::check_cs3(record);
  ASSERT_TRUE(cs3.applicable);
  EXPECT_FALSE(cs3.holds);
  EXPECT_LT(chloe.net_units(Currency::generic()), 0);
  // Safety of everyone else is intact and money is conserved.
  EXPECT_TRUE(props::check_conservation(record).holds);
  EXPECT_TRUE(props::check_escrow_security(record).holds);
}

}  // namespace
}  // namespace xcp::proto
