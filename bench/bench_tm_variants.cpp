// TM-variants: the three transaction-manager instantiations of Sec. 3 —
// "a single external party trusted by all, or a smart contract running on a
// permissionless blockchain ..., or a collection of notaries ... running a
// consensus algorithm for partial synchrony".
//
// Measures per back-end: commit latency, abort latency, message counts; the
// notary committee under f Byzantine members; and the contract chain's
// block-interval sensitivity.

#include <iostream>

#include "exp/scenario.hpp"
#include "exp/stats.hpp"
#include "exp/sweep.hpp"
#include "props/checkers.hpp"
#include "proto/weak/protocol.hpp"
#include "support/table.hpp"

using namespace xcp;
using proto::weak::TmKind;

namespace {

struct Sample {
  double commit_latency_s = 0.0;  // time of the Decide event
  std::uint64_t messages = 0;
  bool paid = false;
  bool def2 = true;
};

Sample run_one(proto::weak::WeakConfig cfg) {
  const auto record = proto::weak::run_weak(cfg);
  Sample s;
  s.paid = record.bob_paid();
  s.messages = record.stats.messages_sent;
  s.def2 = props::check_definition2(record, props::CheckOptions{}).all_hold();
  if (const auto* d = record.trace.first_label(props::EventKind::kDecide,
                                               record.bob_paid() ? "commit"
                                                                 : "abort")) {
    s.commit_latency_s = d->at.to_seconds();
  }
  return s;
}

const char* tm_label(TmKind tm) {
  switch (tm) {
    case TmKind::kTrustedParty: return "trusted party";
    case TmKind::kSmartContract: return "smart contract";
    case TmKind::kNotaryCommittee: return "notary committee (m=4)";
  }
  return "?";
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 20;
  std::cout << "== TM-variants: trusted party vs smart contract vs notary "
               "committee ==\n(n = 3, GST = 1s, post-GST Delta = 100ms)\n";

  // Part 1: commit path comparison.
  Table commit({"TM back-end", "decide latency p50/p95 (s)", "messages (mean)",
                "paid", "Def.2"});
  for (TmKind tm : {TmKind::kTrustedParty, TmKind::kSmartContract,
                    TmKind::kNotaryCommittee}) {
    const auto fn = [tm](std::uint64_t seed) {
      auto cfg = exp::thm3_config(tm, 3, seed);
      cfg.env = exp::partial_env(exp::default_timing(), 1,
                                 Duration::millis(300));
      return run_one(cfg);
    };
    const auto samples = exp::parallel_sweep<Sample>(1, kSeeds, fn);
    exp::Summary lat;
    double msgs = 0;
    std::size_t paid = 0;
    std::size_t def2 = 0;
    for (const auto& s : samples) {
      lat.add(s.commit_latency_s);
      msgs += static_cast<double>(s.messages);
      paid += s.paid;
      def2 += s.def2;
    }
    commit.add_row({tm_label(tm),
                    Table::fmt(lat.median(), 3) + " / " +
                        Table::fmt(lat.percentile(95), 3),
                    Table::fmt(msgs / kSeeds, 1),
                    Table::pct(static_cast<double>(paid) / kSeeds),
                    Table::pct(static_cast<double>(def2) / kSeeds)});
  }
  commit.print(std::cout, "commit path: latency and message cost per back-end");

  // Part 2: abort path (one immediately-impatient customer).
  Table abort_t({"TM back-end", "abort latency (mean s)", "Def.2"});
  for (TmKind tm : {TmKind::kTrustedParty, TmKind::kSmartContract,
                    TmKind::kNotaryCommittee}) {
    const auto fn = [tm](std::uint64_t seed) {
      auto cfg = exp::thm3_config(tm, 3, seed);
      cfg.env = exp::partial_env(exp::default_timing(), 1,
                                 Duration::millis(300));
      cfg.patience_overrides.push_back({1, Duration::millis(1)});
      return run_one(cfg);
    };
    const auto samples = exp::parallel_sweep<Sample>(1, kSeeds, fn);
    double lat = 0;
    std::size_t def2 = 0;
    for (const auto& s : samples) {
      lat += s.commit_latency_s;
      def2 += s.def2;
    }
    abort_t.add_row({tm_label(tm), Table::fmt(lat / kSeeds, 3),
                     Table::pct(static_cast<double>(def2) / kSeeds)});
  }
  abort_t.print(std::cout, "abort path (impatient chloe_1)");

  // Part 3: notary committee under Byzantine members, m = 3f'+1 sizes.
  Table byz({"committee m", "byz notaries", "behaviour", "paid", "Def.2"});
  struct ByzRow {
    int m;
    int f;
    consensus::NotaryBehaviour b;
    const char* label;
  };
  for (const ByzRow& row :
       {ByzRow{4, 0, consensus::NotaryBehaviour::kSilent, "-"},
        ByzRow{4, 1, consensus::NotaryBehaviour::kSilent, "silent"},
        ByzRow{4, 1, consensus::NotaryBehaviour::kEquivocator, "equivocator"},
        ByzRow{7, 2, consensus::NotaryBehaviour::kSilent, "silent"},
        ByzRow{7, 2, consensus::NotaryBehaviour::kEquivocator, "equivocator"},
        ByzRow{10, 3, consensus::NotaryBehaviour::kSilent, "silent"}}) {
    const auto fn = [row](std::uint64_t seed) {
      auto cfg = exp::thm3_config(TmKind::kNotaryCommittee, 2, seed);
      cfg.env = exp::partial_env(exp::default_timing(), 1,
                                 Duration::millis(300));
      cfg.notary_count = row.m;
      cfg.byzantine_notaries = row.f;
      cfg.notary_byz = row.b;
      return run_one(cfg);
    };
    const auto samples = exp::parallel_sweep<Sample>(1, kSeeds / 2, fn);
    std::size_t paid = 0;
    std::size_t def2 = 0;
    for (const auto& s : samples) {
      paid += s.paid;
      def2 += s.def2;
    }
    byz.add_row({Table::fmt(static_cast<std::int64_t>(row.m)),
                 Table::fmt(static_cast<std::int64_t>(row.f)), row.label,
                 Table::pct(static_cast<double>(paid) / (kSeeds / 2)),
                 Table::pct(static_cast<double>(def2) / (kSeeds / 2))});
  }
  byz.print(std::cout, "notary committee with f < m/3 Byzantine members");

  // Part 4: contract-chain block interval sweep (latency follows blocks).
  Table blocks({"block interval", "decide latency (mean s)", "paid"});
  for (std::int64_t interval_ms : {100, 250, 500, 1000, 2000}) {
    const auto fn = [interval_ms](std::uint64_t seed) {
          auto cfg = exp::thm3_config(TmKind::kSmartContract, 2, seed);
          cfg.env = exp::partial_env(exp::default_timing(), 1,
                                     Duration::millis(300));
          cfg.block_interval = Duration::millis(interval_ms);
          return run_one(cfg);
        };
    const auto samples = exp::parallel_sweep<Sample>(1, kSeeds / 2, fn);
    double lat = 0;
    std::size_t paid = 0;
    for (const auto& s : samples) {
      lat += s.commit_latency_s;
      paid += s.paid;
    }
    blocks.add_row({Duration::millis(interval_ms).str(),
                    Table::fmt(lat / (kSeeds / 2), 3),
                    Table::pct(static_cast<double>(paid) / (kSeeds / 2))});
  }
  blocks.print(std::cout, "smart-contract TM: block interval sensitivity");
  return 0;
}
