// FIG1-topology: the linear customer/escrow chain of Figure 1.
//
// Reproduces the figure's structure as measurements: for growing chain
// length n we report the message count (which the topology makes Theta(n)),
// the end-to-end payment latency (Theta(n) relay steps), per-hop latency,
// simulator event counts and wall-clock simulation throughput.

#include <chrono>
#include <iostream>

#include "exp/scenario.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;

int main() {
  std::cout << "== FIG1-topology: cost of the Fig. 1 chain vs n ==\n"
            << "c_0 (Alice) - e_0 - c_1 - e_1 - ... - e_{n-1} - c_n (Bob)\n";

  Table table({"n (escrows)", "participants", "messages", "bob paid at",
               "latency/hop (ms)", "sim events", "wall us/run",
               "all props"});

  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    const auto t0 = std::chrono::steady_clock::now();
    auto cfg = exp::thm1_config(n, /*seed=*/1);
    const auto record = proto::run_time_bounded(cfg);
    const auto t1 = std::chrono::steady_clock::now();

    const auto report = props::check_definition1(record, props::CheckOptions{});
    // Latency: global time at which Bob's balance increased.
    TimePoint paid_at;
    for (const auto& e : record.trace.events()) {
      if (e.kind == props::EventKind::kTransfer &&
          e.peer == record.parts.bob()) {
        paid_at = e.at;
      }
    }
    const double per_hop_ms =
        paid_at.to_seconds() * 1000.0 / (2.0 * n + 1.0);  // money+chi legs
    table.add_row(
        {Table::fmt(static_cast<std::int64_t>(n)),
         Table::fmt(static_cast<std::int64_t>(2 * n + 1)),
         Table::fmt(record.stats.messages_sent), paid_at.str(),
         Table::fmt(per_hop_ms, 2), Table::fmt(record.stats.events_executed),
         Table::fmt(static_cast<std::int64_t>(
             std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                 .count())),
         Table::fmt(report.all_hold())});
  }
  table.print(std::cout, "messages and latency scale linearly in n (Fig. 1)");

  // Message-kind census for one representative run: the protocol sends
  // exactly n G's, n P's, 2n+? $'s and n+? chi's on the happy path.
  const auto record = proto::run_time_bounded(exp::thm1_config(4, 2));
  Table census({"message kind", "count", "expected (n=4)"});
  for (const char* kind : {"G", "P", "$", "chi"}) {
    std::size_t count = 0;
    for (const auto& e : record.trace.events()) {
      if (e.kind == props::EventKind::kSend && e.label == kind) ++count;
    }
    std::string expected;
    if (std::string(kind) == "G" || std::string(kind) == "P") expected = "n = 4";
    if (std::string(kind) == "$") expected = "2n = 8 (pay in + pay out)";
    if (std::string(kind) == "chi") expected = "2n = 8 (escrow+customer relay)";
    census.add_row({kind, Table::fmt(static_cast<std::uint64_t>(count)),
                    expected});
  }
  census.print(std::cout, "message census, happy path, n = 4");
  return 0;
}
