// THM1-feasibility: "If communications and computations are synchronous,
// there exists a time-bounded cross-chain payment protocol."
//
// Falsification harness: sweep chain length, drift and delay spreads across
// many seeds in conforming synchronous environments; Definition 1 (C, T
// time-bounded, ES, CS1-3, L) must hold in every run, and measured
// termination must stay within the a-priori bound. Also reports how tight
// the bound is (max measured / bound).

#include <iostream>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;

namespace {

struct CellResult {
  bool all_hold = true;
  std::string first_failure;
  double bound_utilization = 0.0;  // max over customers of measured/bound
  bool bob_paid = false;
};

CellResult run_one(int n, double rho, std::uint64_t seed) {
  auto cfg = exp::thm1_config(n, seed);
  cfg.assumed.rho = rho;
  cfg.env.actual_rho = rho;
  const auto record = proto::run_time_bounded(cfg);
  const auto report = props::check_definition1(record, props::CheckOptions{});

  CellResult r;
  r.all_hold = report.all_hold();
  if (!r.all_hold) r.first_failure = report.failed().front();
  r.bob_paid = record.bob_paid();
  for (int i = 0; i <= n; ++i) {
    const auto& c = record.customer(i);
    if (!c.terminated) continue;
    const double measured =
        static_cast<double>((c.terminated_global - TimePoint::origin()).count());
    const double bound = static_cast<double>(
        record.schedule->customer_termination_bound(i).count());
    r.bound_utilization = std::max(r.bound_utilization, measured / bound);
  }
  return r;
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 40;
  std::cout << "== THM1: Definition-1 compliance under synchrony ==\n"
            << "(" << kSeeds
            << " random conforming environments per cell; a single violation "
               "would falsify the theorem's protocol)\n";

  Table table({"n", "rho", "runs", "Def.1 holds", "bob paid", "max term/bound",
               "violations"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    for (double rho : {0.0, 1e-4, 1e-3, 1e-2}) {
      const auto fn = [n, rho](std::uint64_t seed) { return run_one(n, rho, seed); };
      const auto results = exp::parallel_sweep<CellResult>(1, kSeeds, fn);
      std::size_t holds = 0;
      std::size_t paid = 0;
      double max_util = 0.0;
      std::string failure;
      for (const auto& r : results) {
        holds += r.all_hold;
        paid += r.bob_paid;
        max_util = std::max(max_util, r.bound_utilization);
        if (!r.all_hold && failure.empty()) failure = r.first_failure;
      }
      table.add_row({Table::fmt(static_cast<std::int64_t>(n)),
                     Table::fmt(rho, 4), Table::fmt(kSeeds),
                     Table::pct(static_cast<double>(holds) / kSeeds),
                     Table::pct(static_cast<double>(paid) / kSeeds),
                     Table::fmt(max_util, 3), failure.empty() ? "-" : failure});
    }
  }
  table.print(std::cout, "Thm 1 sweep: every cell must read 100% / 100%");

  // Termination-bound detail at one representative configuration: the
  // a-priori bound vs measured termination per customer role.
  const auto record = proto::run_time_bounded(exp::thm1_config(4, 1));
  Table bounds({"customer", "measured (true time)", "a-priori bound",
                "utilization"});
  for (int i = 0; i <= 4; ++i) {
    const auto& c = record.customer(i);
    const Duration measured = c.terminated_global - TimePoint::origin();
    const Duration bound = record.schedule->customer_termination_bound(i);
    bounds.add_row({c.role, measured.str(), bound.str(),
                    Table::pct(static_cast<double>(measured.count()) /
                               static_cast<double>(bound.count()))});
  }
  bounds.print(std::cout, "requirement T: measured vs a-priori bound (n=4)");
  return 0;
}
