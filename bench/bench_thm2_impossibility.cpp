// THM2-impossibility: "If communications are partially synchronous, there is
// no eventually terminating cross-chain payment protocol."
//
// An impossibility theorem cannot be *proven* by running code; it is
// *illustrated* by exhibiting, for each natural protocol choice, the
// adversarial partially-synchronous execution the proof constructs:
//
//  (a) the Thm-1 protocol run beyond its timing assumptions: the adversary
//      holds chi in flight past escrow deadlines (legal pre-GST) — safety
//      survives, but Bob/connectors never terminate and L fails;
//  (b) "wait longer" variants (timeouts scaled 10x, 100x): the same attack
//      merely moves the deadline; the adversary (who knows the protocol)
//      delays past any fixed bound — eventual termination still fails;
//  (c) an "impatient" variant where stuck customers give up: they terminate,
//      but now a connector terminates at a loss — CS3 (safety) is violated.
//
// Together: for every way of resolving the wait-vs-give-up dilemma, some
// Definition-1 requirement falls, which is the dichotomy at the heart of
// the proof.

#include <iostream>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "net/adversary.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;

namespace {

proto::AdversaryFactory hold_chi_until(TimePoint release) {
  return [release](const proto::Participants& parts,
                   const proto::TimelockSchedule&)
             -> std::unique_ptr<net::Adversary> {
    auto adv = std::make_unique<net::RuleBasedAdversary>();
    for (auto escrow : parts.escrows) {
      adv->hold_until(net::RuleBasedAdversary::all_of(
                          {net::RuleBasedAdversary::kind_is("chi"),
                           net::RuleBasedAdversary::to_process(escrow)}),
                      release);
    }
    return adv;
  };
}

struct Verdict {
  bool safety_violated = false;
  bool all_terminated = true;
  bool bob_paid = false;
  std::string detail;
};

Verdict run_case(double timeout_scale, std::uint64_t seed) {
  auto cfg = exp::thm1_config(2, seed);
  // Stretch the protocol's assumed Delta by timeout_scale: this scales every
  // a_i/d_i window ("just wait longer").
  cfg.assumed.delta_max = cfg.assumed.delta_max * static_cast<std::int64_t>(
                              timeout_scale);
  // Partially synchronous environment whose GST exceeds every window: the
  // adversary holds chi until after the last deadline. Message delays are
  // otherwise normal.
  const auto horizon_guess =
      proto::TimelockSchedule::drift_compensated(2, cfg.assumed).horizon();
  const TimePoint release = TimePoint::origin() + horizon_guess * 3;
  cfg.env = exp::partial_env(cfg.assumed, /*gst_seconds=*/0,
                             Duration::millis(150));
  cfg.env.gst = release;  // GST after every deadline
  cfg.adversary = hold_chi_until(release);
  cfg.extra_horizon = horizon_guess * 6;

  const auto record = proto::run_time_bounded(cfg);

  Verdict v;
  v.bob_paid = record.bob_paid();
  std::vector<props::PropertyResult> safety{
      props::check_conservation(record),
      props::check_escrow_security(record),
      props::check_cs1(record, false), props::check_cs2(record, false),
      props::check_cs3(record)};
  for (const auto& res : safety) {
    if (res.applicable && !res.holds) {
      v.safety_violated = true;
      v.detail = res.str();
    }
  }
  for (const auto& p : record.participants) {
    if (!p.is_escrow && !p.terminated) {
      v.all_terminated = false;
      if (v.detail.empty()) v.detail = p.role + " never terminates";
    }
  }
  return v;
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 10;
  std::cout
      << "== THM2: the wait-vs-give-up dichotomy under partial synchrony ==\n"
      << "adversary holds chi in flight past every escrow deadline (legal "
         "pre-GST);\nn = 2, "
      << kSeeds << " seeds per row\n";

  Table table({"protocol variant", "safety holds", "all terminate",
               "bob paid", "requirement lost", "witness"});

  for (double scale : {1.0, 10.0, 100.0}) {
    const auto fn = [scale](std::uint64_t seed) {
      return run_case(scale, seed);
    };
    const auto results = exp::parallel_sweep<Verdict>(1, kSeeds, fn);
    std::size_t safe = 0;
    std::size_t term = 0;
    std::size_t paid = 0;
    std::string witness;
    for (const auto& r : results) {
      safe += !r.safety_violated;
      term += r.all_terminated;
      paid += r.bob_paid;
      if (witness.empty() && !r.detail.empty()) witness = r.detail;
    }
    table.add_row(
        {"timeouts x" + Table::fmt(scale, 0),
         Table::pct(static_cast<double>(safe) / kSeeds),
         Table::pct(static_cast<double>(term) / kSeeds),
         Table::pct(static_cast<double>(paid) / kSeeds),
         term == kSeeds ? "-" : "T (eventual termination) + L", witness});
  }
  table.print(std::cout,
              "option A: keep waiting -> safety survives, termination dies");

  // Option B: give up. Model the impatient variant by crashing the stuck
  // connector at its own patience deadline (equivalent to an automaton that
  // times out of await_$): it terminates at a loss, violating CS3.
  std::cout
      << "\noption B: give up instead of waiting -> termination survives,\n"
         "safety dies. An impatient connector that walks away after paying\n"
         "and redeeming chi upstream ends strictly down its hop amount:\n";
  {
    auto cfg = exp::thm1_config(2, 3);
    const auto horizon_guess =
        proto::TimelockSchedule::drift_compensated(2, cfg.assumed).horizon();
    const TimePoint release = TimePoint::origin() + horizon_guess * 3;
    cfg.env = exp::partial_env(cfg.assumed, 0, Duration::millis(150));
    cfg.env.gst = release;
    // Hold only e_0's chi: e_1 pays Bob, Chloe_1 forwards chi to e_0, which
    // refunds Alice at its deadline. Chloe_1 is left waiting for money that
    // never comes. If she "gives up", she has lost v_1.
    cfg.adversary = [release](const proto::Participants& parts,
                              const proto::TimelockSchedule&)
        -> std::unique_ptr<net::Adversary> {
      auto adv = std::make_unique<net::RuleBasedAdversary>();
      adv->hold_until(net::RuleBasedAdversary::all_of(
                          {net::RuleBasedAdversary::kind_is("chi"),
                           net::RuleBasedAdversary::to_process(parts.escrow(0))}),
                      release);
      return adv;
    };
    cfg.extra_horizon = horizon_guess * 6;
    const auto record = proto::run_time_bounded(cfg);
    const auto& chloe = record.customer(1);
    Table t({"participant", "terminated", "net change", "interpretation"});
    for (const auto& p : record.participants) {
      const std::int64_t net = p.net_units(Currency::generic());
      std::string interp = "-";
      if (p.role == "chloe_1") {
        interp = p.terminated ? "?" : "stuck: would lose " +
                                          std::to_string(-net) +
                                          " by giving up (CS3)";
      }
      if (p.role == "bob" && net > 0) interp = "paid via e_1";
      if (p.role == "alice" && net == 0) interp = "refunded by e_0";
      t.add_row({p.role, Table::fmt(p.terminated),
                 Table::fmt(net), interp});
    }
    t.print(std::cout, "the stranded-connector execution (n=2, chi to e_0 held)");
    std::cout << "chloe_1 net position if she gave up now: "
              << chloe.net_units(Currency::generic())
              << " GEN  => any terminating rule violates CS3; any safe rule "
                 "violates T.\n";

    // And the same statement checker-verified: run the *impatient variant*
    // (customers give up after a finite local wait) under the same attack —
    // every customer terminates, and CS3 is formally violated.
    auto impatient = cfg;
    impatient.customer_giveup = horizon_guess;
    const auto record2 = proto::run_time_bounded(impatient);
    const auto cs3 = props::check_cs3(record2);
    bool all_terminated = true;
    for (const auto& p : record2.participants) {
      if (!p.is_escrow) all_terminated = all_terminated && p.terminated;
    }
    std::cout << "\nimpatient variant under the same attack: all customers "
                 "terminated = "
              << (all_terminated ? "yes" : "no") << "; checker verdict: \n  "
              << cs3.str() << "\n";
  }
  return 0;
}
