// Wire-codec microbenchmarks: serialize/parse cost per protocol message
// family, quorum-certificate encoding in bitmap vs explicit mode, and
// stream-frame extraction throughput. These size the CPU tax the socket
// transport adds per message relative to in-sim delivery (which moves a
// shared_ptr and pays nothing).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "consensus/messages.hpp"
#include "crypto/certificate.hpp"
#include "crypto/identity.hpp"
#include "net/wire.hpp"
#include "proto/bodies.hpp"

namespace {

using namespace xcp;
using Bytes = std::vector<std::uint8_t>;

crypto::KeyRegistry& registry() {
  static crypto::KeyRegistry keys(0xbe9cULL);
  return keys;
}

std::vector<sim::ProcessId> roster(int m) {
  std::vector<sim::ProcessId> r;
  for (int i = 0; i < m; ++i) r.push_back(sim::ProcessId(21 + i));
  return r;
}

crypto::Certificate quorum_cert(const std::vector<sim::ProcessId>& members) {
  const sim::ProcessId committee(3'000'013);
  crypto::Certificate probe;
  probe.kind = crypto::CertKind::kCommit;
  probe.deal_id = 13;
  probe.issuer = committee;
  std::vector<crypto::Signature> sigs;
  const std::size_t quorum = 2 * ((members.size() - 1) / 3) + 1;
  for (std::size_t i = 0; i < quorum; ++i) {
    sigs.push_back(registry().signer_for(members[i]).sign(probe.digest()));
  }
  crypto::Certificate chi =
      crypto::make_payment_cert(registry().signer_for(sim::ProcessId(2)), 13);
  return crypto::make_quorum_cert(crypto::CertKind::kCommit, 13, committee,
                                  std::move(sigs), &chi);
}

net::Message small_message() {
  net::Message m;
  m.id = 1;
  m.from = sim::ProcessId(4);
  m.to = sim::ProcessId(23);
  m.kind = net::kinds::money;
  auto body = net::make_body<proto::MoneyMsg>();
  body->deal_id = 13;
  body->receipt = 99;
  body->amount = Amount(1'000, Currency::generic());
  m.body = body;
  return m;
}

net::Message decision_message(const std::vector<sim::ProcessId>& members) {
  net::Message m;
  m.id = 2;
  m.from = sim::ProcessId(21);
  m.to = sim::ProcessId(0);
  m.kind = net::kinds::tm_cert;
  auto body = net::make_body<consensus::DecisionMsg>();
  body->cert = quorum_cert(members);
  m.body = body;
  return m;
}

// --------------------------------------------------------- message codec

void BM_WireSerializeSmall(benchmark::State& state) {
  const net::Message m = small_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::serialize_message(m));
  }
}
BENCHMARK(BM_WireSerializeSmall);

void BM_WireParseSmall(benchmark::State& state) {
  const Bytes buf = net::serialize_message(small_message());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_message(buf));
  }
}
BENCHMARK(BM_WireParseSmall);

void BM_WireRoundTripDecision(benchmark::State& state) {
  // Committee size sweeps quorum-cert weight; roster enables bitmap mode.
  const int m = static_cast<int>(state.range(0));
  const auto members = roster(m);
  net::WireContext ctx;
  ctx.roster = &members;
  const net::Message msg = decision_message(members);
  for (auto _ : state) {
    const Bytes buf = net::serialize_message(msg, ctx);
    benchmark::DoNotOptimize(net::parse_message(buf, ctx));
  }
}
BENCHMARK(BM_WireRoundTripDecision)->Arg(4)->Arg(16)->Arg(64);

// ------------------------------------------------------ certificate modes

void BM_WireCertBitmap(benchmark::State& state) {
  const auto members = roster(static_cast<int>(state.range(0)));
  const crypto::Certificate cert = quorum_cert(members);
  net::WireContext ctx;
  ctx.roster = &members;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes buf = net::serialize_certificate(cert, ctx);
    bytes = buf.size();
    benchmark::DoNotOptimize(net::parse_certificate(buf, ctx));
  }
  state.counters["cert_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WireCertBitmap)->Arg(4)->Arg(64);

void BM_WireCertExplicit(benchmark::State& state) {
  const auto members = roster(static_cast<int>(state.range(0)));
  const crypto::Certificate cert = quorum_cert(members);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes buf = net::serialize_certificate(cert);  // no roster
    bytes = buf.size();
    benchmark::DoNotOptimize(net::parse_certificate(buf));
  }
  state.counters["cert_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WireCertExplicit)->Arg(4)->Arg(64);

// ----------------------------------------------------------- stream frames

void BM_WireStreamExtract(benchmark::State& state) {
  // Throughput of the length-prefix framer over a batch of small frames —
  // the per-pump work of a busy socket connection.
  const Bytes payload = net::serialize_message(small_message());
  Bytes batch;
  constexpr int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    net::append_stream_frame(batch, payload.data(), payload.size());
  }
  for (auto _ : state) {
    Bytes rx = batch;
    Bytes frame;
    int n = 0;
    while (net::extract_stream_frame(rx, frame)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_WireStreamExtract);

}  // namespace

BENCHMARK_MAIN();
