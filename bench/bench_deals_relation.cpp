// SEC5-deals: "Relation with cross-chain deals" — payments are not a special
// case of Herlihy-Liskov-Shrira deals, nor vice versa.
//
// Four exhibits:
//  1. well-formedness: payment path graphs are never strongly connected, so
//     [3]'s correctness theorems never apply to a payment encoded as a deal;
//  2. running the HLS timelock protocol on a payment-shaped deal still moves
//     the money, but gives Alice no certificate chi — the deliverable that
//     CS1 makes essential for payments;
//  3. deals have no counterpart of connectors-made-whole (CS3 is about
//     intermediaries; in a swap every party is a principal);
//  4. the deal protocols on proper (cycle) deals behave per [3]: timelock
//     commit = all-or-nothing under synchrony; certified commit = safe under
//     partial synchrony but all-abort-able (no strong liveness).

#include <iostream>

#include "deals/certified_commit.hpp"
#include "deals/deal_matrix.hpp"
#include "deals/timelock_commit.hpp"
#include "exp/scenario.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;
using namespace xcp::deals;

int main() {
  std::cout << "== SEC5: payments vs cross-chain deals ==\n";

  // Exhibit 1: well-formedness of payment paths vs swap cycles.
  Table wf({"deal graph", "parties", "SCCs", "well-formed [3]"});
  for (int n : {1, 2, 4, 8}) {
    std::vector<Amount> hops(static_cast<std::size_t>(n),
                             Amount(100, Currency::generic()));
    const auto m = DealMatrix::from_payment_path(hops);
    wf.add_row({"payment path (n=" + std::to_string(n) + ")",
                Table::fmt(static_cast<std::int64_t>(n + 1)),
                Table::fmt(static_cast<std::int64_t>(m.to_digraph().scc_count())),
                Table::fmt(m.well_formed())});
  }
  for (int p : {2, 3, 5}) {
    const auto m = DealMatrix::swap_cycle(p, Amount(100, Currency::generic()));
    wf.add_row({"swap cycle (" + std::to_string(p) + ")",
                Table::fmt(static_cast<std::int64_t>(p)),
                Table::fmt(static_cast<std::int64_t>(m.to_digraph().scc_count())),
                Table::fmt(m.well_formed())});
  }
  wf.print(std::cout,
           "exhibit 1: payment graphs are never well-formed deals");

  // Exhibit 2: HLS timelock on a payment-shaped deal — money moves, chi
  // does not exist.
  {
    TimelockDealConfig cfg;
    cfg.deal = DealMatrix::from_payment_path(
        {Amount(110, Currency::generic()), Amount(100, Currency::generic())});
    cfg.seed = 3;
    const auto result = run_timelock_deal(cfg);
    Table t({"metric", "deal protocol on a payment", "payment protocol (Thm 1)"});
    const auto payment =
        proto::run_time_bounded(exp::thm1_config(2, 3));
    t.add_row({"transfers completed", Table::fmt(static_cast<std::int64_t>(
                                          result.transfers_completed)),
               "2 (escrow relays)"});
    t.add_row({"alice's net", Table::fmt(result.parties[0].net_by_currency[0].second),
               Table::fmt(payment.alice().net_units(Currency::generic()))});
    t.add_row({"alice holds a proof of payment (chi)", "no — no such object",
               Table::fmt(payment.alice().received_payment_cert)});
    t.add_row({"bob signed an obligation-met statement", "no",
               Table::fmt(payment.bob().issued_payment_cert)});
    t.print(std::cout,
            "exhibit 2: the deal protocol cannot express CS1/CS2 (chi)");
  }

  // Exhibit 3: deal payoff-acceptability vs payment CS3 for intermediaries.
  std::cout
      << "\nexhibit 3: a payment's connector is an intermediary (CS3: made "
         "whole,\ncommission or refund); a deal party is a principal whose "
         "'acceptable payoff'\nis all-in-or-nothing-lost. Encoding the "
         "payment as a deal erases the\ncommission semantics: in exhibit 2 "
         "the connector's +10 commission is just\nanother transfer, with no "
         "requirement tying it to the downstream hop.\n";

  // Exhibit 4: HLS protocols on proper deals (their home turf).
  {
    Table t({"protocol", "deal", "environment", "outcome",
             "compliant payoffs acceptable", "assets stuck"});
    {
      TimelockDealConfig cfg;
      cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
      cfg.seed = 11;
      const auto r = run_timelock_deal(cfg);
      t.add_row({"timelock commit", "4-swap cycle", "synchronous",
                 r.transfers_completed == 4 ? "all committed" : "partial!",
                 Table::fmt(r.all_or_nothing),
                 Table::fmt(static_cast<std::int64_t>(r.transfers_stuck))});
    }
    {
      TimelockDealConfig cfg;
      cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
      cfg.seed = 11;
      cfg.behaviours = {PartyBehaviour::kCompliant, PartyBehaviour::kNoEscrow};
      const auto r = run_timelock_deal(cfg);
      t.add_row({"timelock commit", "4-swap, 1 Byzantine", "synchronous",
                 r.transfers_refunded == 3 ? "all refunded" : "partial!",
                 Table::fmt(r.all_or_nothing),
                 Table::fmt(static_cast<std::int64_t>(r.transfers_stuck))});
    }
    {
      CertifiedDealConfig cfg;
      cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
      cfg.seed = 12;
      cfg.env.gst = TimePoint::origin() + Duration::seconds(1);
      const auto r = run_certified_deal(cfg);
      t.add_row({"certified commit", "4-swap cycle", "partial synchrony",
                 r.committed ? "committed" : "aborted",
                 Table::fmt(r.safety_holds), Table::fmt(!r.no_asset_stuck)});
    }
    {
      // Impatience under pre-GST chaos: the certified protocol may abort
      // with everyone compliant — all-abort is allowed by [3], forbidden by
      // the paper's problem statement.
      int aborts = 0;
      const int runs = 10;
      for (std::uint64_t seed = 1; seed <= runs; ++seed) {
        CertifiedDealConfig cfg;
        cfg.deal = DealMatrix::swap_cycle(4, Amount(100, Currency::generic()));
        cfg.seed = seed;
        cfg.env.gst = TimePoint::origin() + Duration::seconds(30);
        cfg.env.pre_gst_typical = Duration::seconds(10);
        cfg.patience = Duration::seconds(2);
        const auto r = run_certified_deal(cfg);
        aborts += r.aborted ? 1 : 0;
      }
      t.add_row({"certified commit", "4-swap, all compliant",
                 "partial sync, impatient",
                 std::to_string(aborts) + "/" + std::to_string(runs) +
                     " all-abort",
                 "yes (safety kept)", "no"});
    }
    t.print(std::cout, "exhibit 4: the HLS protocols on proper deals");
  }

  std::cout << "\nconclusion (Sec. 5): neither model subsumes the other — "
               "payments need chi\n(CS1/CS2) and connector-neutrality (CS3); "
               "deals need multi-party matrices that\nno linear payment "
               "chain expresses.\n";
  return 0;
}
