// ABL-drift: the paper's key delta over [4] — "the universal protocol of
// [4], but fine-tuned to work correctly in the presence of clock drift".
//
// Ablation: naive windows (a_i = A_i) vs drift-compensated windows
// (a_i = A_i * (1+rho)). We sweep the drift bound rho in an adversarial-but-
// legal environment (delays concentrated near Delta, clocks at the rho
// envelope) and report payment failure rates, plus the cost of compensation
// (window inflation and termination-bound growth).

#include <iostream>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "props/checkers.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;

namespace {

struct Outcome {
  bool bob_paid = false;
  bool def1_holds = true;
};

Outcome run_one(bool compensated, double rho, int n, std::uint64_t seed) {
  auto cfg = exp::thm1_config(n, seed);
  cfg.compensated = compensated;
  cfg.assumed.rho = rho;
  cfg.env.actual_rho = rho;
  // The corner the analysis must survive: every delay close to its bound.
  cfg.env.delta_min = Duration::millis(90);
  const auto record = proto::run_time_bounded(cfg);
  Outcome o;
  o.bob_paid = record.bob_paid();
  o.def1_holds =
      props::check_definition1(record, props::CheckOptions{}).all_hold();
  return o;
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 40;
  constexpr int kN = 4;

  std::cout << "== ABL-drift: naive [4] vs drift-compensated (Thm 1) "
               "schedules ==\n"
            << "n = " << kN << ", delays ~ U[90,100]ms (worst-case-ish), "
            << kSeeds << " seeds per cell\n";

  Table table({"rho (drift bound)", "naive: paid", "naive: Def.1",
               "compensated: paid", "compensated: Def.1"});
  for (double rho : {0.0, 0.001, 0.01, 0.05, 0.10, 0.15, 0.25}) {
    std::size_t naive_paid = 0;
    std::size_t naive_holds = 0;
    std::size_t comp_paid = 0;
    std::size_t comp_holds = 0;
    const auto naive_fn = [rho](std::uint64_t seed) { return run_one(false, rho, kN, seed); };
    const auto comp_fn = [rho](std::uint64_t seed) { return run_one(true, rho, kN, seed); };
    for (const auto& o : exp::parallel_sweep<Outcome>(1, kSeeds, naive_fn)) {
      naive_paid += o.bob_paid;
      naive_holds += o.def1_holds;
    }
    for (const auto& o : exp::parallel_sweep<Outcome>(1, kSeeds, comp_fn)) {
      comp_paid += o.bob_paid;
      comp_holds += o.def1_holds;
    }
    table.add_row({Table::fmt(rho, 3),
                   Table::pct(static_cast<double>(naive_paid) / kSeeds),
                   Table::pct(static_cast<double>(naive_holds) / kSeeds),
                   Table::pct(static_cast<double>(comp_paid) / kSeeds),
                   Table::pct(static_cast<double>(comp_holds) / kSeeds)});
  }
  table.print(std::cout,
              "failure rate vs drift: the compensated column stays at 100%");

  // Cost of compensation: how much window/bound inflation buys correctness.
  Table cost({"rho", "a_0 naive", "a_0 compensated", "inflation",
              "horizon naive", "horizon compensated"});
  for (double rho : {0.001, 0.01, 0.05, 0.15}) {
    auto timing = exp::default_timing();
    timing.rho = rho;
    const auto naive = proto::TimelockSchedule::naive(kN, timing);
    const auto comp = proto::TimelockSchedule::drift_compensated(kN, timing);
    cost.add_row(
        {Table::fmt(rho, 3), naive.a(0).str(), comp.a(0).str(),
         Table::pct(static_cast<double>(comp.a(0).count()) /
                        static_cast<double>(naive.a(0).count()) -
                    1.0, 2),
         naive.horizon().str(), comp.horizon().str()});
  }
  cost.print(std::cout, "cost of drift compensation (window inflation)");

  std::cout << "\nreading: the naive schedule's acceptance windows under-cover"
               " the true\nround-trip exactly when an escrow clock runs fast; "
               "failures grow with rho,\nwhile compensation costs only a "
               "(1+rho) window stretch.\n";
  return 0;
}
