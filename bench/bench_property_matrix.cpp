// TAB-properties: the protocol x property comparison implicit in Sec. 1 and
// Sec. 5 of the paper.
//
// Expected shape (the paper's positioning):
//                         synchrony   sync+drift   partial-sync  partial+adv
//  universal [4] naive    S+T+L       FAILS        S only        S only
//  time-bounded (Thm 1)   S+T+L       S+T+L        S only        S only
//  atomic [4]             S+T+L       S+T+L        S+T, no L     S+T, no L
//  weak (Thm 3, any TM)   S+T+L       S+T+L        S+T+Lw        S+T+Lw
//
// (S = safety: ES/CS/CC/conservation; T = termination; L = Bob paid in
// all-honest runs; for weak protocols L is weak liveness.)

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/runner.hpp"
#include "support/table.hpp"

using namespace xcp;
using exp::ProtocolKind;
using exp::Regime;

namespace {

std::string cell_str(const exp::MatrixCell& c) {
  std::string s;
  s += c.safety_ok() ? "S" : "s!";
  s += c.termination_ok() ? " T" : " t!";
  s += c.liveness_ok() ? " L" : " l!";
  return s;
}

/// Peak resident set (VmHWM) of this process, for the streaming-vs-buffered
/// sweep A/B. Peak RSS is monotonic per process, so compare two separate
/// invocations (one per mode), not two phases of one run.
std::string peak_rss() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return line.substr(6);
  }
  return " (unavailable)";
}

}  // namespace

int main(int argc, char** argv) {
  // --buffered: run every cell through the pre-streaming reference path
  // (whole RunRecords buffered per sweep); --seeds N scales the sweep so
  // the buffering cost is visible. Verdicts are identical either way (the
  // streaming differential test proves it); only the footprint differs.
  bool buffered = false;
  std::size_t kSeeds = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buffered") == 0) buffered = true;
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      kSeeds = static_cast<std::size_t>(std::stoul(argv[++i]));
    }
  }
  constexpr int kN = 2;
  const auto run_cell = [&](ProtocolKind p, Regime r) {
    return buffered ? exp::run_matrix_cell_buffered(p, r, kN, kSeeds)
                    : exp::run_matrix_cell(p, r, kN, kSeeds);
  };

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kUniversalNaive, ProtocolKind::kTimeBounded,
      ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
      ProtocolKind::kWeakContract, ProtocolKind::kWeakCommittee};
  const std::vector<Regime> regimes{
      Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
      Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial};

  std::cout << "== TAB-properties: protocol x regime (" << kSeeds
            << " all-honest runs per cell, n = " << kN << ") ==\n"
            << "cell legend: S/s! safety held/violated, T/t! termination, "
               "L/l! liveness (Bob paid)\n"
            << "expected: naive fails under drift; time-bounded loses T+L "
               "under partial synchrony (Thm 2);\n"
            << "atomic loses only L; the weak protocols keep S+T+L "
               "everywhere (Thm 3).\n";

  std::vector<std::string> headers{"protocol"};
  for (Regime r : regimes) headers.push_back(exp::regime_name(r));
  Table table(headers);

  std::vector<std::string> notes;
  for (ProtocolKind p : protocols) {
    std::vector<std::string> row{exp::protocol_kind_name(p)};
    for (Regime r : regimes) {
      const auto cell = run_cell(p, r);
      row.push_back(cell_str(cell));
      if (!cell.example_violations.empty() && notes.size() < 8) {
        notes.push_back(std::string(exp::protocol_kind_name(p)) + " @ " +
                        exp::regime_name(r) + ": " +
                        cell.example_violations.front());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "property matrix");

  if (!notes.empty()) {
    std::cout << "\nexample violations observed:\n";
    for (const auto& n : notes) std::cout << "  - " << n << "\n";
  }

  std::cout << "\nsweep mode: " << (buffered ? "buffered" : "streaming")
            << ", peak RSS (VmHWM):" << peak_rss() << "\n";
  return 0;
}
