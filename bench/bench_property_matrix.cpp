// TAB-properties: the protocol x property comparison implicit in Sec. 1 and
// Sec. 5 of the paper.
//
// Expected shape (the paper's positioning):
//                         synchrony   sync+drift   partial-sync  partial+adv
//  universal [4] naive    S+T+L       FAILS        S only        S only
//  time-bounded (Thm 1)   S+T+L       S+T+L        S only        S only
//  atomic [4]             S+T+L       S+T+L        S+T, no L     S+T, no L
//  weak (Thm 3, any TM)   S+T+L       S+T+L        S+T+Lw        S+T+Lw
//
// (S = safety: ES/CS/CC/conservation; T = termination; L = Bob paid in
// all-honest runs; for weak protocols L is weak liveness.)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <unistd.h>
#include <string>

#include "exp/dispatch.hpp"
#include "exp/host_pool.hpp"
#include "exp/remote.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"
#include "support/table.hpp"

using namespace xcp;
using exp::ProtocolKind;
using exp::Regime;

namespace {

std::string cell_str(const exp::MatrixCell& c) {
  std::string s;
  s += c.safety_ok() ? "S" : "s!";
  s += c.termination_ok() ? " T" : " t!";
  s += c.liveness_ok() ? " L" : " l!";
  return s;
}

/// Peak resident set (VmHWM) of this process, for the streaming-vs-buffered
/// sweep A/B. Peak RSS is monotonic per process, so compare two separate
/// invocations (one per mode), not two phases of one run.
std::string peak_rss() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return line.substr(6);
  }
  return " (unavailable)";
}

}  // namespace

int main(int argc, char** argv) {
  // --buffered: run every cell through the pre-streaming reference path
  // (whole RunRecords buffered per sweep, full horizon); --seeds N scales
  // the sweep. --full-horizon: streaming, but with early termination
  // disabled (the monitor still watches) — the A/B baseline for the online
  // early-stop numbers in docs/PERF.md. --differential: every seed runs
  // twice and online verdicts are required to equal the post-mortem
  // checkers event-for-event (throws on divergence). Verdicts are
  // identical in every mode; only wall-clock and footprint differ.
  // --shards "1,2,4": after the matrix, sweep the whole 6x4 grid again
  // through exp::distributed_sweep at each shard count and print the
  // scaling curve (results are verified byte-identical to the
  // single-process matrix as they stream). --worker PATH selects the
  // xcp_sweep_shard binary; default $XCP_SWEEP_SHARD_BIN, then
  // ./xcp_sweep_shard, then in-process shards (wire round-trip, no exec).
  // --fault SPEC (repeatable) and --fault-delay-ms MS forward the worker's
  // fault-injection flags through the dispatcher, so the supervision
  // overhead (retries, deadline kills, hedges) can be measured under a
  // chosen fault schedule. Report-only: the dispatch report is printed
  // after the scaling table and never gates the bench — byte-identity of
  // the recovered results is still enforced.
  // --hosts A,B,... runs the scaling sweep through the elastic remote
  // launcher over those execution hosts (--remote ssh for real hosts,
  // --remote sh to exec through /bin/sh on this machine — the CI
  // smoke-test shape); hosts are probed first, the measured startup cost
  // feeds the min-seeds-per-shard heuristic, and the dispatch report
  // gains per-host rollups. --hosts-file FILE reads the same inventory
  // from a file instead — one host[:slots] per line, # comments — the
  // shape a cluster scheduler hands out; it composes with --hosts.
  bool buffered = false;
  bool full_horizon = false;
  bool differential = false;
  std::size_t kSeeds = 8;
  std::vector<unsigned> shard_counts;
  std::string worker_path;
  std::vector<std::string> fault_args;
  std::vector<exp::HostSpec> hosts;
  std::string remote_kind = "sh";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buffered") == 0) buffered = true;
    if (std::strcmp(argv[i], "--full-horizon") == 0) full_horizon = true;
    if (std::strcmp(argv[i], "--differential") == 0) differential = true;
    // Strict positive-integer parsing: std::stoul would terminate the
    // process on "--shards 1,x" and accept "--shards 0", which aborts
    // later inside plan_shards; both should be usage errors.
    const auto parse_positive = [&](const char* tok, const char* flag,
                                    std::size_t& out) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(tok, &end, 10);
      if (end == tok || *end != '\0' || v == 0 ||
          v > std::numeric_limits<unsigned>::max()) {
        std::cerr << "bad " << flag << " value '" << tok
                  << "' (want a positive integer)\n";
        std::exit(2);
      }
      out = static_cast<std::size_t>(v);
    };
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      parse_positive(argv[++i], "--seeds", kSeeds);
    }
    if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc) {
      worker_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      fault_args.insert(fault_args.end(), {"--fault", argv[++i]});
    }
    if (std::strcmp(argv[i], "--fault-delay-ms") == 0 && i + 1 < argc) {
      fault_args.insert(fault_args.end(), {"--fault-delay-ms", argv[++i]});
    }
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      std::istringstream list(argv[++i]);
      std::string tok;
      while (std::getline(list, tok, ',')) {
        if (!tok.empty()) hosts.push_back({tok, 0});
      }
    }
    if (std::strcmp(argv[i], "--hosts-file") == 0 && i + 1 < argc) {
      try {
        auto specs = exp::parse_hosts_file(argv[++i]);
        hosts.insert(hosts.end(), specs.begin(), specs.end());
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--remote") == 0 && i + 1 < argc) {
      remote_kind = argv[++i];
      if (remote_kind != "sh" && remote_kind != "ssh") {
        std::cerr << "--remote must be sh or ssh\n";
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      std::istringstream list(argv[++i]);
      std::string tok;
      while (std::getline(list, tok, ',')) {
        if (tok.empty()) continue;
        std::size_t k = 0;
        parse_positive(tok.c_str(), "--shards", k);
        shard_counts.push_back(static_cast<unsigned>(k));
      }
    }
  }
  if (!shard_counts.empty()) {
    // distributed_sweep shards the streaming sweep; the buffered and
    // differential modes have no sharded counterpart to compare against.
    if (buffered || differential) {
      std::cerr << "--shards cannot be combined with --buffered or "
                   "--differential\n";
      return 2;
    }
    if (worker_path.empty()) {
      try {
        worker_path = exp::default_worker_path();
      } catch (const std::exception& e) {  // env var set but unusable
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (access(worker_path.c_str(), X_OK) != 0) {
      std::cerr << "--worker '" << worker_path
                << "' is not an executable file\n";
      return 2;
    }
  }
  if (!fault_args.empty() &&
      (shard_counts.empty() || worker_path.empty())) {
    std::cerr << "--fault requires --shards and a worker binary "
                 "(in-process shards cannot inject process faults)\n";
    return 2;
  }
  if (!hosts.empty() && (shard_counts.empty() || worker_path.empty())) {
    std::cerr << "--hosts requires --shards and a worker binary "
                 "(remote execution needs a deployable worker)\n";
    return 2;
  }
  constexpr int kN = 2;
  const auto run_cell = [&](ProtocolKind p, Regime r) {
    if (buffered) return exp::run_matrix_cell_buffered(p, r, kN, kSeeds);
    if (differential) {
      return exp::run_matrix_cell_differential(p, r, kN, kSeeds);
    }
    exp::CellOptions opts;
    opts.online.early_stop = !full_horizon;
    return exp::run_matrix_cell(p, r, kN, kSeeds, 1, opts);
  };

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kUniversalNaive, ProtocolKind::kTimeBounded,
      ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
      ProtocolKind::kWeakContract, ProtocolKind::kWeakCommittee};
  const std::vector<Regime> regimes{
      Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
      Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial};

  std::cout << "== TAB-properties: protocol x regime (" << kSeeds
            << " all-honest runs per cell, n = " << kN << ") ==\n"
            << "cell legend: S/s! safety held/violated, T/t! termination, "
               "L/l! liveness (Bob paid)\n"
            << "expected: naive fails under drift; time-bounded loses T+L "
               "under partial synchrony (Thm 2);\n"
            << "atomic loses only L; the weak protocols keep S+T+L "
               "everywhere (Thm 3).\n";

  std::vector<std::string> headers{"protocol"};
  for (Regime r : regimes) headers.push_back(exp::regime_name(r));
  Table table(headers);

  std::vector<std::string> notes;
  Table timing({"protocol", "regime", "wall-clock", "events", "early-stop",
                "mean decided-at"});
  double total_ms = 0.0;
  for (ProtocolKind p : protocols) {
    std::vector<std::string> row{exp::protocol_kind_name(p)};
    for (Regime r : regimes) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto cell = run_cell(p, r);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      total_ms += ms;
      row.push_back(cell_str(cell));
      if (!cell.example_violations.empty() && notes.size() < 8) {
        notes.push_back(std::string(exp::protocol_kind_name(p)) + " @ " +
                        exp::regime_name(r) + ": " +
                        cell.example_violations.front());
      }
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.2f ms", ms);
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.0f%%",
                    100.0 * cell.early_stop_rate());
      const std::string decided =
          cell.early_stops == 0
              ? "-"
              : (cell.decided_at_total /
                 static_cast<std::int64_t>(cell.early_stops))
                    .str();
      timing.add_row({exp::protocol_kind_name(p), exp::regime_name(r), wall,
                      Table::fmt(static_cast<std::int64_t>(cell.events_total)),
                      rate, decided});
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "property matrix");

  if (!notes.empty()) {
    std::cout << "\nexample violations observed:\n";
    for (const auto& n : notes) std::cout << "  - " << n << "\n";
  }

  std::cout << "\n";
  timing.print(std::cout,
               "per-cell sweep cost (early-stop = decided seeds stopped at "
               "their verdict)");

  const char* mode = buffered       ? "buffered (full horizon)"
                     : differential ? "differential (each seed run twice)"
                     : full_horizon ? "streaming, full horizon"
                                    : "streaming + online early stop";
  std::printf("\nsweep mode: %s, total %.1f ms, peak RSS (VmHWM):%s\n", mode,
              total_ms, peak_rss().c_str());

  // ---------------------------------------------- shard-count scaling curve
  if (!shard_counts.empty()) {
    const auto matrix_wall = [&](auto&& cell_fn) {
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<exp::MatrixCell> cells;
      for (ProtocolKind p : protocols) {
        for (Regime r : regimes) cells.push_back(cell_fn(p, r));
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      return std::pair(std::move(cells), ms);
    };

    std::cout << "\n== distributed sweep scaling (whole 6x4 matrix per K, "
              << kSeeds << " seeds/cell"
              << (full_horizon ? ", full horizon" : "") << ") ==\n"
              << "transport: "
              << (worker_path.empty()
                      ? "in-process shards (wire round-trip, no exec)"
                      : "worker processes (" + worker_path + ")")
              << "\n";

    // The scaling sweep honours --full-horizon: reference and shards must
    // run the same monitor mode or the comparison (and the numbers) would
    // silently measure a different sweep than the one requested.
    exp::CellOptions copts;
    copts.online.early_stop = !full_horizon;
    const auto [reference, single_ms] =
        matrix_wall([&](ProtocolKind p, Regime r) {
          return exp::run_matrix_cell(p, r, kN, kSeeds, 1, copts);
        });

    exp::DistributedOptions dopts;
    dopts.worker_path = worker_path;
    dopts.cell = copts;
    dopts.dispatch.extra_worker_args = fault_args;

    std::optional<exp::HostPool> pool;
    std::unique_ptr<exp::RemoteLauncher> remote;
    if (!hosts.empty()) {
      pool.emplace();
      for (const exp::HostSpec& h : hosts) pool->add_host(h.host, h.slots);
      remote = std::make_unique<exp::RemoteLauncher>(
          *pool, remote_kind == "ssh" ? exp::RemoteOptions::ssh_template()
                                      : exp::RemoteOptions::sh_template());
      remote->probe_hosts();
      // The reference pass just measured the sweep's seed throughput;
      // amortize the slowest probed startup against it so no shard is
      // dominated by transport setup.
      const double seeds_per_second =
          single_ms > 0.0
              ? static_cast<double>(protocols.size() * regimes.size() *
                                    kSeeds) /
                    (single_ms / 1000.0)
              : 0.0;
      dopts.min_seeds_per_shard =
          remote->recommended_min_seeds(seeds_per_second);
      dopts.dispatch.launcher = remote.get();
      std::cout << "remote hosts (" << remote_kind << " transport):";
      for (const auto& st : pool->stats()) {
        std::cout << " " << st.host << "=" << exp::host_state_name(st.state);
        if (st.startup_cost.count() >= 0) {
          std::cout << "/" << st.startup_cost.count() << "ms";
        }
      }
      std::cout << "; min seeds/shard " << dopts.min_seeds_per_shard << "\n";
    }

    exp::DispatchReport dispatch_report;
    dopts.report = &dispatch_report;
    Table scaling({"shards", "wall-clock", "vs single-process", "verified"});
    {
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.2f ms", single_ms);
      scaling.add_row({"(single process)", wall, "1.00x", "reference"});
    }
    for (const unsigned k : shard_counts) {
      // A worker that fails mid-sweep (killed, OOM, bad deploy) surfaces
      // as an exception from distributed_sweep; report it instead of
      // letting it std::terminate the bench.
      auto sharded_matrix = [&] {
        try {
          return matrix_wall([&](ProtocolKind p, Regime r) {
            return exp::distributed_sweep(p, r, kN, kSeeds, k, 1, dopts);
          });
        } catch (const std::exception& e) {
          std::cerr << "FATAL: distributed sweep at K=" << k
                    << " failed: " << e.what() << "\n";
          std::exit(1);
        }
      };
      const auto [cells, ms] = sharded_matrix();
      // Field-complete by construction: MatrixCell::operator== is
      // defaulted, so a future field automatically joins the check.
      if (!(cells == reference)) {
        std::cerr << "FATAL: distributed sweep at K=" << k
                  << " diverged from the single-process matrix\n";
        return 1;
      }
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.2f ms", ms);
      char rel[32];
      std::snprintf(rel, sizeof(rel), "%.2fx", single_ms / ms);
      scaling.add_row({std::to_string(k), wall, rel, "byte-identical"});
    }
    std::cout << "\n";
    scaling.print(std::cout,
                  "distributed_sweep wall-clock by shard count (every K "
                  "verified byte-identical to the single-process cells)");
    // Supervision telemetry across every K above. Report-only by design:
    // retries/timeouts/hedges vary with machine load (and with any
    // injected --fault schedule), so this never gates — the byte-identity
    // check above is the gate.
    std::cout << "\n" << dispatch_report.to_string() << "\n";
  }
  return 0;
}
