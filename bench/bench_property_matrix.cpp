// TAB-properties: the protocol x property comparison implicit in Sec. 1 and
// Sec. 5 of the paper.
//
// Expected shape (the paper's positioning):
//                         synchrony   sync+drift   partial-sync  partial+adv
//  universal [4] naive    S+T+L       FAILS        S only        S only
//  time-bounded (Thm 1)   S+T+L       S+T+L        S only        S only
//  atomic [4]             S+T+L       S+T+L        S+T, no L     S+T, no L
//  weak (Thm 3, any TM)   S+T+L       S+T+L        S+T+Lw        S+T+Lw
//
// (S = safety: ES/CS/CC/conservation; T = termination; L = Bob paid in
// all-honest runs; for weak protocols L is weak liveness.)

#include <iostream>

#include "exp/runner.hpp"
#include "support/table.hpp"

using namespace xcp;
using exp::ProtocolKind;
using exp::Regime;

namespace {

std::string cell_str(const exp::MatrixCell& c) {
  std::string s;
  s += c.safety_ok() ? "S" : "s!";
  s += c.termination_ok() ? " T" : " t!";
  s += c.liveness_ok() ? " L" : " l!";
  return s;
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 8;
  constexpr int kN = 2;

  const std::vector<ProtocolKind> protocols{
      ProtocolKind::kUniversalNaive, ProtocolKind::kTimeBounded,
      ProtocolKind::kInterledgerAtomic, ProtocolKind::kWeakTrusted,
      ProtocolKind::kWeakContract, ProtocolKind::kWeakCommittee};
  const std::vector<Regime> regimes{
      Regime::kSynchronyConforming, Regime::kSynchronyHighDrift,
      Regime::kPartialSynchrony, Regime::kPartialSynchronyAdversarial};

  std::cout << "== TAB-properties: protocol x regime (" << kSeeds
            << " all-honest runs per cell, n = " << kN << ") ==\n"
            << "cell legend: S/s! safety held/violated, T/t! termination, "
               "L/l! liveness (Bob paid)\n"
            << "expected: naive fails under drift; time-bounded loses T+L "
               "under partial synchrony (Thm 2);\n"
            << "atomic loses only L; the weak protocols keep S+T+L "
               "everywhere (Thm 3).\n";

  std::vector<std::string> headers{"protocol"};
  for (Regime r : regimes) headers.push_back(exp::regime_name(r));
  Table table(headers);

  std::vector<std::string> notes;
  for (ProtocolKind p : protocols) {
    std::vector<std::string> row{exp::protocol_kind_name(p)};
    for (Regime r : regimes) {
      const auto cell = exp::run_matrix_cell(p, r, kN, kSeeds);
      row.push_back(cell_str(cell));
      if (!cell.example_violations.empty() && notes.size() < 8) {
        notes.push_back(std::string(exp::protocol_kind_name(p)) + " @ " +
                        exp::regime_name(r) + ": " +
                        cell.example_violations.front());
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "property matrix");

  if (!notes.empty()) {
    std::cout << "\nexample violations observed:\n";
    for (const auto& n : notes) std::cout << "  - " << n << "\n";
  }
  return 0;
}
