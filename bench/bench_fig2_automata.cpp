// FIG2-automata: the ANTA automata of Figure 2.
//
// Prints each participant's automaton (states + transitions, dot available
// via to_dot) for a 2-connector deal, then executes the network of automata
// on a happy path and prints the event trace, verifying that each automaton
// walks exactly the Fig. 2 state sequence.

#include <iostream>

#include "anta/render.hpp"
#include "exp/scenario.hpp"
#include "ledger/escrow.hpp"
#include "proto/figure2.hpp"
#include "proto/timebounded.hpp"
#include "support/table.hpp"

using namespace xcp;

int main() {
  const int n = 3;  // Alice, Chloe_1, Chloe_2, Bob + escrows e_0..e_2

  // Build the automata exactly as the protocol runner does, for printing.
  auto ctx = std::make_shared<proto::Fig2Context>();
  ctx->spec = proto::DealSpec::uniform(1, n, 1000, 10);
  for (int i = 0; i <= n; ++i) {
    ctx->parts.customers.push_back(sim::ProcessId(static_cast<std::uint32_t>(i)));
  }
  for (int i = 0; i < n; ++i) {
    ctx->parts.escrows.push_back(
        sim::ProcessId(static_cast<std::uint32_t>(n + 1 + i)));
  }
  ctx->schedule =
      proto::TimelockSchedule::drift_compensated(n, exp::default_timing());
  // Ledger et al. are not needed just to print structure; the builders only
  // capture them inside callbacks.
  ledger::Ledger ledger;
  ledger::EscrowRegistry escrows(ledger);
  crypto::KeyRegistry keys(1);
  ctx->ledger = &ledger;
  ctx->escrows = &escrows;
  ctx->keys = &keys;
  ctx->bob_signer = keys.signer_for(ctx->parts.bob());

  std::cout << "== FIG2-automata: the protocol as an Asynchronous Network of "
               "Timed Automata ==\n\n";
  std::cout << anta::to_ascii(*proto::build_escrow_automaton(ctx, 1)) << "\n";
  std::cout << anta::to_ascii(*proto::build_alice_automaton(ctx)) << "\n";
  std::cout << anta::to_ascii(*proto::build_connector_automaton(ctx, 1)) << "\n";
  std::cout << anta::to_ascii(*proto::build_bob_automaton(ctx)) << "\n";

  std::cout << "(graphviz: pipe any automaton through anta::to_dot)\n";

  // Schedule parameters of the run (the d_i / a_i of the G and P promises).
  Table sched({"escrow", "a_i (local window)", "d_i (refund promise)",
               "A_i (true window)"});
  for (int i = 0; i < n; ++i) {
    sched.add_row({"e_" + std::to_string(i), ctx->schedule.a(i).str(),
                   ctx->schedule.d(i).str(), ctx->schedule.true_window(i).str()});
  }
  sched.print(std::cout, "timelock schedule (Delta=100ms, eps=5ms, rho=1e-3)");

  // Execute the network and show the trace.
  auto cfg = exp::thm1_config(n, /*seed=*/7);
  const auto record = proto::run_time_bounded(cfg);
  std::cout << "\n== happy-path execution trace (n = 3) ==\n"
            << record.trace.render(120) << "\n";
  std::cout << record.summary() << "\n";

  // Verify the walked state sequences via final states.
  Table finals({"participant", "final state", "as in Fig. 2"});
  for (const auto& p : record.participants) {
    std::string expected;
    if (p.role == "alice") expected = proto::kDoneGotChi;
    else if (p.role == "bob") expected = proto::kDonePaid;
    else if (!p.is_escrow) expected = proto::kDonePaid;
    else expected = proto::kDonePaid;
    finals.add_row({p.role, p.final_state,
                    Table::fmt(p.final_state == expected)});
  }
  finals.print(std::cout, "final states on the happy path");
  return 0;
}
