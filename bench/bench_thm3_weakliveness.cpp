// THM3-weak: "There exists a cross-chain payment protocol with weak liveness
// guarantees."
//
// Validation harness for Definition 2 under partial synchrony:
//  - all-honest, patient runs commit across all three TM back-ends
//    (trusted party / smart contract / notary committee);
//  - Byzantine participants never break C, CC, T, ES, CS1', CS2', CS3;
//  - the patience sweep: success is conditional on customers waiting out the
//    pre-GST chaos — impatient runs abort *safely* (Lw's conditionality).

#include <iostream>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "props/checkers.hpp"
#include "proto/weak/protocol.hpp"
#include "support/table.hpp"

using namespace xcp;
using proto::weak::TmKind;
using proto::weak::WeakByz;
using proto::weak::WeakByzAssignment;

namespace {

struct Cell {
  bool def2_holds = true;
  bool bob_paid = false;
  bool aborted = false;
  std::string failure;
};

Cell run_one(TmKind tm, int n, Duration patience,
             std::vector<WeakByzAssignment> byz, std::uint64_t seed,
             std::int64_t gst_seconds) {
  auto cfg = exp::thm3_config(tm, n, seed);
  cfg.env = exp::partial_env(exp::default_timing(), gst_seconds,
                             Duration::seconds(2));
  cfg.patience = patience;
  cfg.byzantine = std::move(byz);
  cfg.horizon = Duration::seconds(300);
  const auto record = proto::weak::run_weak(cfg);
  const auto report = props::check_definition2(record, props::CheckOptions{});
  Cell c;
  c.def2_holds = report.all_hold();
  if (!c.def2_holds) c.failure = report.failed().front();
  c.bob_paid = record.bob_paid();
  c.aborted = record.trace.count_label(props::EventKind::kDecide, "abort") > 0;
  return c;
}

const char* tm_label(TmKind tm) {
  switch (tm) {
    case TmKind::kTrustedParty: return "trusted party";
    case TmKind::kSmartContract: return "smart contract";
    case TmKind::kNotaryCommittee: return "notary committee";
  }
  return "?";
}

}  // namespace

int main() {
  constexpr std::size_t kSeeds = 20;
  const std::vector<TmKind> kTms{TmKind::kTrustedParty, TmKind::kSmartContract,
                                 TmKind::kNotaryCommittee};

  std::cout << "== THM3: the weak-liveness protocol under partial synchrony "
               "(GST = 5s, pre-GST delays ~2s) ==\n";

  // Part 1: all honest, patient — Def. 2 holds and Bob is paid.
  Table happy({"TM back-end", "n", "Def.2 holds", "bob paid"});
  for (TmKind tm : kTms) {
    for (int n : {1, 2, 4, 8}) {
      const auto fn = [&](std::uint64_t seed) {
        return run_one(tm, n, Duration::seconds(120), {}, seed, 5);
      };
      const auto cells = exp::parallel_sweep<Cell>(1, kSeeds, fn);
      std::size_t holds = 0;
      std::size_t paid = 0;
      for (const auto& c : cells) {
        holds += c.def2_holds;
        paid += c.bob_paid;
      }
      happy.add_row({tm_label(tm), Table::fmt(static_cast<std::int64_t>(n)),
                     Table::pct(static_cast<double>(holds) / kSeeds),
                     Table::pct(static_cast<double>(paid) / kSeeds)});
    }
  }
  happy.print(std::cout, "all honest + patient: weak liveness delivers");

  // Part 2: patience sweep — success is conditional on waiting long enough.
  Table patience({"patience", "commit rate", "abort rate", "Def.2 holds"});
  for (std::int64_t patience_ms : {200, 1000, 3000, 8000, 20000, 60000}) {
    const auto fn = [&](std::uint64_t seed) {
      return run_one(TmKind::kTrustedParty, 3,
                     Duration::millis(patience_ms), {}, seed, 5);
    };
    const auto cells = exp::parallel_sweep<Cell>(1, kSeeds, fn);
    std::size_t paid = 0;
    std::size_t aborted = 0;
    std::size_t holds = 0;
    for (const auto& c : cells) {
      paid += c.bob_paid;
      aborted += c.aborted;
      holds += c.def2_holds;
    }
    patience.add_row({Duration::millis(patience_ms).str(),
                      Table::pct(static_cast<double>(paid) / kSeeds),
                      Table::pct(static_cast<double>(aborted) / kSeeds),
                      Table::pct(static_cast<double>(holds) / kSeeds)});
  }
  patience.print(
      std::cout,
      "patience sweep (n=3, trusted TM): impatience aborts, but always safely");

  // Part 3: Byzantine participants — safety and termination survive.
  struct ByzCase {
    const char* label;
    std::vector<WeakByzAssignment> assignments;
  };
  const std::vector<ByzCase> cases{
      {"alice crashes", {WeakByzAssignment::customer(0, WeakByz::kCrash)}},
      {"chloe_1 never deposits",
       {WeakByzAssignment::customer(1, WeakByz::kNoDeposit)}},
      {"bob withholds chi", {WeakByzAssignment::customer(2, WeakByz::kNoChi)}},
      {"escrow_0 never reports",
       {WeakByzAssignment::escrow(0, WeakByz::kNoReport)}},
      {"escrow_1 never resolves",
       {WeakByzAssignment::escrow(1, WeakByz::kNoResolve)}},
      {"two colluders",
       {WeakByzAssignment::customer(1, WeakByz::kNoDeposit),
        WeakByzAssignment::escrow(1, WeakByz::kNoResolve)}},
  };
  Table byz({"deviation", "TM", "Def.2 holds", "outcome"});
  for (const auto& c : cases) {
    for (TmKind tm : kTms) {
      const auto fn = [&](std::uint64_t seed) {
        return run_one(tm, 2, Duration::seconds(20), c.assignments, seed, 2);
      };
      const auto cells = exp::parallel_sweep<Cell>(1, kSeeds / 2, fn);
      std::size_t holds = 0;
      std::size_t commits = 0;
      for (const auto& cell : cells) {
        holds += cell.def2_holds;
        commits += cell.bob_paid;
      }
      byz.add_row({c.label, tm_label(tm),
                   Table::pct(static_cast<double>(holds) / (kSeeds / 2)),
                   commits == kSeeds / 2 ? "commit"
                   : commits == 0        ? "abort"
                                         : "mixed"});
    }
  }
  byz.print(std::cout,
            "Byzantine sweeps: Def.2 safety/termination must read 100%");
  return 0;
}
