// PERF-core: google-benchmark microbenchmarks of the substrates — event
// queue, network delivery, drift-clock conversion, signature checks,
// end-to-end protocol runs and BFT agreement throughput. These are the
// engineering numbers a downstream user sizes experiments with.

#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "crypto/certificate.hpp"
#include "exp/scenario.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "proto/bodies.hpp"
#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"
#include "props/label.hpp"
#include "props/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace xcp;

const net::MsgKind kPing = net::kind("ping");

void BM_EventQueuePushPop(benchmark::State& state) {
  // Steady-state cost of scheduling: the queue persists across iterations
  // (as it does for a simulator's whole run), so storage is at its
  // high-water mark and the measurement is pure push/sift/pop work.
  //
  // The scheduled closure captures a delivery-sized payload (48 bytes —
  // what Network::send's closure carries: a Message plus the network
  // pointer), because that is what every hot call site in the simulator
  // actually pushes. The trivial empty-capture case is benched separately.
  struct DeliveryPayload {
    std::uint64_t msg_id;
    std::uint64_t from_to;
    std::uint64_t kind;
    void* body_a;
    void* body_b;
    std::uint64_t* sink;
  };
  const std::int64_t n = state.range(0);
  sim::EventQueue q;
  Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      const DeliveryPayload payload{static_cast<std::uint64_t>(i), 7, 42,
                                    nullptr, nullptr, &sink};
      q.push(TimePoint::micros(rng.next_int(0, 1'000'000)),
             [payload] { *payload.sink += payload.msg_id; });
    }
    while (!q.empty()) {
      auto ev = q.pop();
      ev.fn();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384)->Arg(102400);

void BM_EventQueuePushPopTrivial(benchmark::State& state) {
  // Same shape with an empty-capture callable — the old queue's best case
  // (small-object-optimised std::function, no allocation either way).
  const std::int64_t n = state.range(0);
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      q.push(TimePoint::micros(rng.next_int(0, 1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPopTrivial)->Arg(1024)->Arg(16384)->Arg(102400);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Timer-dominated workloads (retransmission deadlines, protocol timeouts)
  // cancel most of what they schedule. 7 of 8 pushed events are cancelled
  // before the drain; a lazy-tombstone queue pays for every stale entry at
  // pop time, an indexed heap removes them in place.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    Rng rng(7);
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(
          q.push(TimePoint::micros(rng.next_int(0, 1'000'000)), [] {}));
    }
    for (std::int64_t i = 0; i < n; ++i) {
      if (i % 8 != 0) q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384)->Arg(102400);

void timer_reset_loop(benchmark::State& state, bool use_wheel) {
  // The classic watchdog pattern at protocol timeout scale: each activity
  // re-arms its ~1 s deadline (push the new one, cancel the old one) as
  // work trickles in. Live size stays at 1 the whole run; storage and time
  // should not grow with the number of resets.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q(use_wheel);
    // Anchor near t=0 (a pending event, as any live simulation has), so
    // the re-armed deadline is genuinely ~10 s in the future.
    q.push(TimePoint::micros(1), [] {});
    sim::EventId last = q.push(TimePoint::micros(10'000'000), [] {});
    for (std::int64_t i = 1; i <= n; ++i) {
      const sim::EventId next =
          q.push(TimePoint::micros(10'000'000 + i), [] {});
      q.cancel(last);
      last = next;
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_EventQueueTimerReset(benchmark::State& state) {
  timer_reset_loop(state, /*use_wheel=*/true);
}
BENCHMARK(BM_EventQueueTimerReset)->Arg(16384)->Arg(102400);
void BM_EventQueueTimerResetHeapOnly(benchmark::State& state) {
  timer_reset_loop(state, /*use_wheel=*/false);
}
BENCHMARK(BM_EventQueueTimerResetHeapOnly)->Arg(16384)->Arg(102400);

void timer_reset_crowd_loop(benchmark::State& state, bool use_wheel) {
  // The timer-reset pattern at protocol scale: k concurrently-armed
  // timeouts (one per in-flight deal/round), each re-armed round-robin
  // with deltas clustered at protocol-like magnitudes. This is where the
  // wheel's O(1) schedule/cancel beats the heap's O(log k) sift per
  // re-arm — the live population is large, unlike the 1-live watchdog
  // case above.
  const std::int64_t k = state.range(0);
  constexpr std::int64_t kResets = 262'144;
  // Timelock / notary-round / impatience magnitudes: 1 s .. 2 min.
  const std::int64_t deltas[] = {1'000'000, 5'000'000, 30'000'000,
                                 120'000'000};
  for (auto _ : state) {
    sim::EventQueue q(use_wheel);
    q.push(TimePoint::micros(1), [] {});  // anchor: pins the epoch near t=0
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(k));
    std::int64_t now = 0;
    for (std::int64_t i = 0; i < k; ++i) {
      ids.push_back(q.push(
          TimePoint::micros(1 + deltas[i % 4] + i), [] {}));
    }
    for (std::int64_t r = 0; r < kResets; ++r) {
      const auto slot = static_cast<std::size_t>(r % k);
      now += 3;
      q.cancel(ids[slot]);
      ids[slot] = q.push(TimePoint::micros(now + deltas[r % 4]), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * kResets);
  state.SetLabel("k=" + std::to_string(k) + " live timers");
}
void BM_EventQueueTimerResetCrowd(benchmark::State& state) {
  timer_reset_crowd_loop(state, /*use_wheel=*/true);
}
// The 1M-timer configuration is the per-slot bucket-array layout's design
// point: ~5k entries per occupied bucket, where the old linked buckets
// paid two random neighbour lines per unlink.
BENCHMARK(BM_EventQueueTimerResetCrowd)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(1048576);
void BM_EventQueueTimerResetCrowdHeapOnly(benchmark::State& state) {
  timer_reset_crowd_loop(state, /*use_wheel=*/false);
}
BENCHMARK(BM_EventQueueTimerResetCrowdHeapOnly)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(1048576);

void BM_DriftClockConversion(benchmark::State& state) {
  Rng rng(2);
  const auto clock = sim::DriftClock::sample(rng, 1e-3, Duration::millis(10));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 997;
    benchmark::DoNotOptimize(clock.to_local(TimePoint::micros(t)));
    benchmark::DoNotOptimize(clock.to_global(TimePoint::micros(t)));
  }
}
BENCHMARK(BM_DriftClockConversion);

void BM_SignatureVerify(benchmark::State& state) {
  crypto::KeyRegistry keys(3);
  const auto signer = keys.signer_for(sim::ProcessId(1));
  const auto sig = signer.sign(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(sig, 0x1234));
  }
}
BENCHMARK(BM_SignatureVerify);

void BM_QuorumCertVerify(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  crypto::KeyRegistry keys(4);
  std::vector<sim::ProcessId> members;
  for (int i = 0; i < m; ++i) members.push_back(sim::ProcessId(i));
  crypto::Certificate shape;
  shape.kind = crypto::CertKind::kAbort;
  shape.deal_id = 1;
  shape.issuer = sim::ProcessId(999);
  std::vector<crypto::Signature> sigs;
  for (int i = 0; i < m; ++i) {
    sigs.push_back(keys.signer_for(members[static_cast<std::size_t>(i)])
                       .sign(shape.digest()));
  }
  const auto cert = crypto::make_quorum_cert(crypto::CertKind::kAbort, 1,
                                             shape.issuer, sigs);
  const std::size_t threshold = static_cast<std::size_t>(2 * ((m - 1) / 3) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::verify_quorum_cert(keys, cert, members, threshold));
  }
}
BENCHMARK(BM_QuorumCertVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_TimeBoundedPayment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm1_config(n, seed++);
    const auto record = proto::run_time_bounded(cfg);
    benchmark::DoNotOptimize(record.stats.messages_sent);
  }
  state.SetLabel("payments/iteration, n=" + std::to_string(n));
}
BENCHMARK(BM_TimeBoundedPayment)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_WeakProtocolTrusted(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 4, seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
}
BENCHMARK(BM_WeakProtocolTrusted);

void BM_WeakProtocolCommittee(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 2,
                                seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    cfg.notary_count = m;
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
  state.SetLabel("m=" + std::to_string(m) + " notaries");
}
BENCHMARK(BM_WeakProtocolCommittee)->Arg(4)->Arg(7)->Arg(13);

void BM_WeakProtocolCommitteeSyncDelta(benchmark::State& state) {
  // The committee run under the deterministic-delay synchrony preset
  // (net::DelayModel::synchronous via exp::deterministic_env): each
  // round's same-instant replies coalesce through batched delivery into
  // one simulator event, instead of the jittered one-event-per-message
  // schedule the sampled-delay variant above pays.
  const int m = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 2,
                                seed++);
    cfg.env = exp::deterministic_env(Duration::millis(10));
    cfg.notary_count = m;
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
  state.SetLabel("m=" + std::to_string(m) + " notaries, fixed delta");
}
BENCHMARK(BM_WeakProtocolCommitteeSyncDelta)->Arg(4)->Arg(7)->Arg(13);

void BM_SendChurnBody(benchmark::State& state) {
  // Message churn with a payload allocated per send — the steady-state load
  // of every protocol run (promises, receipts, certificates all ride in
  // heap-allocated bodies). Exercises the body allocation path.
  class Churn final : public net::Actor {
   public:
    int remaining = 0;
    sim::ProcessId peer;
    void on_message(const net::Message& m) override {
      benchmark::DoNotOptimize(m.body.get());
      if (remaining-- > 0) send_one();
    }
    void send_one() {
      auto body = net::make_body<proto::MoneyMsg>();
      body->deal_id = static_cast<std::uint64_t>(remaining);
      send(peer, net::kinds::money, std::move(body));
    }
  };
  const int kMessages = 10'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(1), Duration::micros(10)));
    auto& a = sim.spawn<Churn>("a");
    auto& b = sim.spawn<Churn>("b");
    net.attach(a);
    net.attach(b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    a.peer = b.id();
    b.peer = a.id();
    sim.schedule_at(TimePoint::origin(), [&] { a.send_one(); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_SendChurnBody);

void committee_broadcast_loop(benchmark::State& state, bool batching) {
  // Committee fan-in under a fixed-delay (deterministic-synchrony) model:
  // a coordinator broadcasts to m notaries, every notary's reply arrives
  // at the coordinator at the same instant. With batched delivery the m
  // same-instant replies ride one simulator event; without it each is its
  // own event. This is the shape of every notary round and of adversarial
  // hold-until release storms.
  class Coordinator final : public net::Actor {
   public:
    int rounds_left = 0;
    int replies_pending = 0;
    std::vector<sim::ProcessId> notaries;
    void broadcast() {
      replies_pending = static_cast<int>(notaries.size());
      for (const auto id : notaries) send(id, net::kinds::bft_proposal);
    }
    void on_message(const net::Message&) override {
      if (--replies_pending == 0 && rounds_left-- > 0) broadcast();
    }
  };
  class Notary final : public net::Actor {
   public:
    sim::ProcessId coordinator;
    void on_message(const net::Message&) override {
      send(coordinator, net::kinds::bft_vote);
    }
  };

  const int m = static_cast<int>(state.range(0));
  constexpr int kRounds = 512;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(10), Duration::micros(10)));
    net.set_delivery_batching(batching);
    auto& coord = sim.spawn<Coordinator>("coord");
    net.attach(coord);
    for (int i = 0; i < m; ++i) {
      auto& notary = sim.spawn<Notary>("n" + std::to_string(i));
      net.attach(notary);
      notary.coordinator = coord.id();
      coord.notaries.push_back(notary.id());
    }
    coord.rounds_left = kRounds;
    sim.schedule_at(TimePoint::origin(), [&] { coord.broadcast(); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * m * 2);
  state.SetLabel("m=" + std::to_string(m) + " notaries");
}
void BM_CommitteeBroadcast(benchmark::State& state) {
  committee_broadcast_loop(state, /*batching=*/true);
}
BENCHMARK(BM_CommitteeBroadcast)->Arg(7)->Arg(13)->Arg(64);
void BM_CommitteeBroadcastUnbatched(benchmark::State& state) {
  committee_broadcast_loop(state, /*batching=*/false);
}
BENCHMARK(BM_CommitteeBroadcastUnbatched)->Arg(7)->Arg(13)->Arg(64);

// ------------------------------------------------------- trace pipeline

// The committee-run-shaped event stream both trace benches record: sends /
// delivers dominating (with interned message kinds as labels), escrow
// movements with amounts, cert issuance, TM decisions, terminations.
struct TraceShape {
  props::EventKind kind;
  props::Label label;
  bool has_amount;
};

const std::vector<TraceShape>& trace_shapes() {
  using props::EventKind;
  static const std::vector<TraceShape> shapes = [] {
    const props::Label kinds[] = {
        props::Label::from_wire(net::kinds::g.value()),
        props::Label::from_wire(net::kinds::p.value()),
        props::Label::from_wire(net::kinds::money.value()),
        props::Label::from_wire(net::kinds::chi.value()),
        props::Label::from_wire(net::kinds::tm_chi.value()),
        props::Label::from_wire(net::kinds::bft_vote.value()),
    };
    std::vector<TraceShape> s;
    for (int i = 0; i < 16; ++i) {
      switch (i % 16) {
        case 5:
          s.push_back({EventKind::kTransfer, props::Label(), true});
          break;
        case 9:
          s.push_back({EventKind::kEscrowLock, props::Label(), true});
          break;
        case 11:
          s.push_back({EventKind::kCertIssued, props::labels::chi, false});
          break;
        case 13:
          s.push_back({EventKind::kDecide, props::labels::commit, false});
          break;
        case 15:
          s.push_back({EventKind::kTerminate, props::Label(), false});
          break;
        default:
          s.push_back({i % 2 == 0 ? EventKind::kSend : EventKind::kDeliver,
                       kinds[i % 6], false});
          break;
      }
    }
    return s;
  }();
  return shapes;
}

constexpr std::uint32_t kTraceActors = 13;  // a committee-run's cast

/// The checker-style query matrix: per-kind counts, per-actor transfer
/// counts and first-termination lookups, a label-filtered count, and a
/// walk of the decide events — the queries T, CC, Lw and the matrix
/// runner actually issue.
template <typename Recorder, typename LabelT>
std::size_t trace_query_matrix(const Recorder& t, const LabelT& chi,
                               const LabelT& commit) {
  using props::EventKind;
  std::size_t sink = 0;
  for (std::size_t k = 0; k < props::kEventKindCount; ++k) {
    sink += t.count(static_cast<EventKind>(k));
  }
  for (std::uint32_t a = 0; a < kTraceActors; ++a) {
    sink += t.count(EventKind::kTransfer, sim::ProcessId(a));
    sink += (t.first(EventKind::kTerminate, sim::ProcessId(a)) != nullptr);
  }
  sink += t.count_label(EventKind::kCertIssued, chi);
  for (const auto* e : t.all(EventKind::kDecide)) {
    sink += (e->label == commit);
  }
  return sink;
}

void BM_TraceRecordCheck(benchmark::State& state) {
  // Record an n-event committee-shaped run, then evaluate the full checker
  // query matrix; the recorder persists across iterations (arena chunks at
  // their high-water mark), as it does across a sweep's seeds.
  const std::int64_t n = state.range(0);
  const auto& shapes = trace_shapes();
  props::TraceRecorder t;
  std::size_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      const TraceShape& s = shapes[static_cast<std::size_t>(i % 16)];
      props::TraceEvent e;
      e.kind = s.kind;
      e.at = TimePoint::micros(i);
      e.local_at = e.at;
      e.actor = sim::ProcessId(static_cast<std::uint32_t>(i) % kTraceActors);
      e.peer = sim::ProcessId(static_cast<std::uint32_t>(i + 1) % kTraceActors);
      e.label = s.label;
      if (s.has_amount) e.amount = Amount(i, Currency::generic());
      t.record(e);
    }
    sink += trace_query_matrix(t, props::labels::chi, props::labels::commit);
    t.clear();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TraceRecordCheck)->Arg(4096)->Arg(65536);

namespace legacy_trace {

// The seed trace pipeline, verbatim: std::string labels, one monolithic
// vector, every query an O(n) scan. The in-binary baseline for
// BM_TraceRecordCheck's A/B (the differential test in test_properties.cpp
// proves the two produce identical answers).
struct Event {
  props::EventKind kind = props::EventKind::kCustom;
  TimePoint at;
  TimePoint local_at;
  sim::ProcessId actor;
  sim::ProcessId peer;
  std::string label;
  std::optional<Amount> amount;
  std::uint64_t deal_id = 0;
};

class Recorder {
 public:
  void record(Event e) { events_.push_back(std::move(e)); }
  void clear() { events_.clear(); }
  std::size_t count(props::EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.kind == kind);
    return n;
  }
  std::size_t count(props::EventKind kind, sim::ProcessId actor) const {
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.kind == kind && e.actor == actor);
    return n;
  }
  std::size_t count_label(props::EventKind kind,
                          const std::string& label) const {
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.kind == kind && e.label == label);
    return n;
  }
  const Event* first(props::EventKind kind, sim::ProcessId actor) const {
    for (const auto& e : events_) {
      if (e.kind == kind && e.actor == actor) return &e;
    }
    return nullptr;
  }
  std::vector<const Event*> all(props::EventKind kind) const {
    std::vector<const Event*> out;
    for (const auto& e : events_) {
      if (e.kind == kind) out.push_back(&e);
    }
    return out;
  }

 private:
  std::vector<Event> events_;
};

}  // namespace legacy_trace

void BM_TraceRecordCheckLegacy(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto& shapes = trace_shapes();
  const std::string chi = "chi";
  const std::string commit = "commit";
  legacy_trace::Recorder t;
  std::size_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      const TraceShape& s = shapes[static_cast<std::size_t>(i % 16)];
      legacy_trace::Event e;
      e.kind = s.kind;
      e.at = TimePoint::micros(i);
      e.local_at = e.at;
      e.actor = sim::ProcessId(static_cast<std::uint32_t>(i) % kTraceActors);
      e.peer = sim::ProcessId(static_cast<std::uint32_t>(i + 1) % kTraceActors);
      // Label costs mirror the seed exactly: send/deliver paid
      // `m.kind.str()` (an interner name() resolution + string copy) per
      // event, while cert/decide emitters assigned from const char*
      // literals.
      if (s.kind == props::EventKind::kSend ||
          s.kind == props::EventKind::kDeliver) {
        e.label = std::string(s.label.name());
      } else if (s.kind == props::EventKind::kCertIssued) {
        e.label = "chi";
      } else if (s.kind == props::EventKind::kDecide) {
        e.label = "commit";
      }
      if (s.has_amount) e.amount = Amount(i, Currency::generic());
      t.record(std::move(e));
    }
    sink += trace_query_matrix(t, chi, commit);
    t.clear();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TraceRecordCheckLegacy)->Arg(4096)->Arg(65536);

void BM_NetworkDelivery(benchmark::State& state) {
  // Raw message throughput through the simulator+network stack.
  class Echo final : public net::Actor {
   public:
    int remaining = 0;
    sim::ProcessId peer;
    void on_message(const net::Message&) override {
      if (remaining-- > 0) send(peer, kPing, nullptr);
    }
    using net::Actor::send;
  };
  const int kMessages = 10'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(1), Duration::micros(10)));
    auto& a = sim.spawn<Echo>("a");
    auto& b = sim.spawn<Echo>("b");
    net.attach(a);
    net.attach(b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    a.peer = b.id();
    b.peer = a.id();
    sim.schedule_at(TimePoint::origin(), [&] { a.send(b.id(), kPing, nullptr); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_NetworkDelivery);

}  // namespace

BENCHMARK_MAIN();
