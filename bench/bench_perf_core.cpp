// PERF-core: google-benchmark microbenchmarks of the substrates — event
// queue, network delivery, drift-clock conversion, signature checks,
// end-to-end protocol runs and BFT agreement throughput. These are the
// engineering numbers a downstream user sizes experiments with.

#include <benchmark/benchmark.h>

#include "crypto/certificate.hpp"
#include "exp/scenario.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "proto/bodies.hpp"
#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace xcp;

const net::MsgKind kPing = net::kind("ping");

void BM_EventQueuePushPop(benchmark::State& state) {
  // Steady-state cost of scheduling: the queue persists across iterations
  // (as it does for a simulator's whole run), so storage is at its
  // high-water mark and the measurement is pure push/sift/pop work.
  //
  // The scheduled closure captures a delivery-sized payload (48 bytes —
  // what Network::send's closure carries: a Message plus the network
  // pointer), because that is what every hot call site in the simulator
  // actually pushes. The trivial empty-capture case is benched separately.
  struct DeliveryPayload {
    std::uint64_t msg_id;
    std::uint64_t from_to;
    std::uint64_t kind;
    void* body_a;
    void* body_b;
    std::uint64_t* sink;
  };
  const std::int64_t n = state.range(0);
  sim::EventQueue q;
  Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      const DeliveryPayload payload{static_cast<std::uint64_t>(i), 7, 42,
                                    nullptr, nullptr, &sink};
      q.push(TimePoint::micros(rng.next_int(0, 1'000'000)),
             [payload] { *payload.sink += payload.msg_id; });
    }
    while (!q.empty()) {
      auto ev = q.pop();
      ev.fn();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384)->Arg(102400);

void BM_EventQueuePushPopTrivial(benchmark::State& state) {
  // Same shape with an empty-capture callable — the old queue's best case
  // (small-object-optimised std::function, no allocation either way).
  const std::int64_t n = state.range(0);
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      q.push(TimePoint::micros(rng.next_int(0, 1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPopTrivial)->Arg(1024)->Arg(16384)->Arg(102400);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Timer-dominated workloads (retransmission deadlines, protocol timeouts)
  // cancel most of what they schedule. 7 of 8 pushed events are cancelled
  // before the drain; a lazy-tombstone queue pays for every stale entry at
  // pop time, an indexed heap removes them in place.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    Rng rng(7);
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(
          q.push(TimePoint::micros(rng.next_int(0, 1'000'000)), [] {}));
    }
    for (std::int64_t i = 0; i < n; ++i) {
      if (i % 8 != 0) q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384)->Arg(102400);

void timer_reset_loop(benchmark::State& state, bool use_wheel) {
  // The classic watchdog pattern at protocol timeout scale: each activity
  // re-arms its ~1 s deadline (push the new one, cancel the old one) as
  // work trickles in. Live size stays at 1 the whole run; storage and time
  // should not grow with the number of resets.
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q(use_wheel);
    // Anchor near t=0 (a pending event, as any live simulation has), so
    // the re-armed deadline is genuinely ~10 s in the future.
    q.push(TimePoint::micros(1), [] {});
    sim::EventId last = q.push(TimePoint::micros(10'000'000), [] {});
    for (std::int64_t i = 1; i <= n; ++i) {
      const sim::EventId next =
          q.push(TimePoint::micros(10'000'000 + i), [] {});
      q.cancel(last);
      last = next;
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_EventQueueTimerReset(benchmark::State& state) {
  timer_reset_loop(state, /*use_wheel=*/true);
}
BENCHMARK(BM_EventQueueTimerReset)->Arg(16384)->Arg(102400);
void BM_EventQueueTimerResetHeapOnly(benchmark::State& state) {
  timer_reset_loop(state, /*use_wheel=*/false);
}
BENCHMARK(BM_EventQueueTimerResetHeapOnly)->Arg(16384)->Arg(102400);

void timer_reset_crowd_loop(benchmark::State& state, bool use_wheel) {
  // The timer-reset pattern at protocol scale: k concurrently-armed
  // timeouts (one per in-flight deal/round), each re-armed round-robin
  // with deltas clustered at protocol-like magnitudes. This is where the
  // wheel's O(1) schedule/cancel beats the heap's O(log k) sift per
  // re-arm — the live population is large, unlike the 1-live watchdog
  // case above.
  const std::int64_t k = state.range(0);
  constexpr std::int64_t kResets = 262'144;
  // Timelock / notary-round / impatience magnitudes: 1 s .. 2 min.
  const std::int64_t deltas[] = {1'000'000, 5'000'000, 30'000'000,
                                 120'000'000};
  for (auto _ : state) {
    sim::EventQueue q(use_wheel);
    q.push(TimePoint::micros(1), [] {});  // anchor: pins the epoch near t=0
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(k));
    std::int64_t now = 0;
    for (std::int64_t i = 0; i < k; ++i) {
      ids.push_back(q.push(
          TimePoint::micros(1 + deltas[i % 4] + i), [] {}));
    }
    for (std::int64_t r = 0; r < kResets; ++r) {
      const auto slot = static_cast<std::size_t>(r % k);
      now += 3;
      q.cancel(ids[slot]);
      ids[slot] = q.push(TimePoint::micros(now + deltas[r % 4]), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * kResets);
  state.SetLabel("k=" + std::to_string(k) + " live timers");
}
void BM_EventQueueTimerResetCrowd(benchmark::State& state) {
  timer_reset_crowd_loop(state, /*use_wheel=*/true);
}
BENCHMARK(BM_EventQueueTimerResetCrowd)->Arg(1024)->Arg(16384)->Arg(65536);
void BM_EventQueueTimerResetCrowdHeapOnly(benchmark::State& state) {
  timer_reset_crowd_loop(state, /*use_wheel=*/false);
}
BENCHMARK(BM_EventQueueTimerResetCrowdHeapOnly)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(65536);

void BM_DriftClockConversion(benchmark::State& state) {
  Rng rng(2);
  const auto clock = sim::DriftClock::sample(rng, 1e-3, Duration::millis(10));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 997;
    benchmark::DoNotOptimize(clock.to_local(TimePoint::micros(t)));
    benchmark::DoNotOptimize(clock.to_global(TimePoint::micros(t)));
  }
}
BENCHMARK(BM_DriftClockConversion);

void BM_SignatureVerify(benchmark::State& state) {
  crypto::KeyRegistry keys(3);
  const auto signer = keys.signer_for(sim::ProcessId(1));
  const auto sig = signer.sign(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(sig, 0x1234));
  }
}
BENCHMARK(BM_SignatureVerify);

void BM_QuorumCertVerify(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  crypto::KeyRegistry keys(4);
  std::vector<sim::ProcessId> members;
  for (int i = 0; i < m; ++i) members.push_back(sim::ProcessId(i));
  crypto::Certificate shape;
  shape.kind = crypto::CertKind::kAbort;
  shape.deal_id = 1;
  shape.issuer = sim::ProcessId(999);
  std::vector<crypto::Signature> sigs;
  for (int i = 0; i < m; ++i) {
    sigs.push_back(keys.signer_for(members[static_cast<std::size_t>(i)])
                       .sign(shape.digest()));
  }
  const auto cert = crypto::make_quorum_cert(crypto::CertKind::kAbort, 1,
                                             shape.issuer, sigs);
  const std::size_t threshold = static_cast<std::size_t>(2 * ((m - 1) / 3) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::verify_quorum_cert(keys, cert, members, threshold));
  }
}
BENCHMARK(BM_QuorumCertVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_TimeBoundedPayment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm1_config(n, seed++);
    const auto record = proto::run_time_bounded(cfg);
    benchmark::DoNotOptimize(record.stats.messages_sent);
  }
  state.SetLabel("payments/iteration, n=" + std::to_string(n));
}
BENCHMARK(BM_TimeBoundedPayment)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_WeakProtocolTrusted(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 4, seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
}
BENCHMARK(BM_WeakProtocolTrusted);

void BM_WeakProtocolCommittee(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 2,
                                seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    cfg.notary_count = m;
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
  state.SetLabel("m=" + std::to_string(m) + " notaries");
}
BENCHMARK(BM_WeakProtocolCommittee)->Arg(4)->Arg(7)->Arg(13);

void BM_SendChurnBody(benchmark::State& state) {
  // Message churn with a payload allocated per send — the steady-state load
  // of every protocol run (promises, receipts, certificates all ride in
  // heap-allocated bodies). Exercises the body allocation path.
  class Churn final : public net::Actor {
   public:
    int remaining = 0;
    sim::ProcessId peer;
    void on_message(const net::Message& m) override {
      benchmark::DoNotOptimize(m.body.get());
      if (remaining-- > 0) send_one();
    }
    void send_one() {
      auto body = net::make_body<proto::MoneyMsg>();
      body->deal_id = static_cast<std::uint64_t>(remaining);
      send(peer, net::kinds::money, std::move(body));
    }
  };
  const int kMessages = 10'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(1), Duration::micros(10)));
    auto& a = sim.spawn<Churn>("a");
    auto& b = sim.spawn<Churn>("b");
    net.attach(a);
    net.attach(b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    a.peer = b.id();
    b.peer = a.id();
    sim.schedule_at(TimePoint::origin(), [&] { a.send_one(); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_SendChurnBody);

void committee_broadcast_loop(benchmark::State& state, bool batching) {
  // Committee fan-in under a fixed-delay (deterministic-synchrony) model:
  // a coordinator broadcasts to m notaries, every notary's reply arrives
  // at the coordinator at the same instant. With batched delivery the m
  // same-instant replies ride one simulator event; without it each is its
  // own event. This is the shape of every notary round and of adversarial
  // hold-until release storms.
  class Coordinator final : public net::Actor {
   public:
    int rounds_left = 0;
    int replies_pending = 0;
    std::vector<sim::ProcessId> notaries;
    void broadcast() {
      replies_pending = static_cast<int>(notaries.size());
      for (const auto id : notaries) send(id, net::kinds::bft_proposal);
    }
    void on_message(const net::Message&) override {
      if (--replies_pending == 0 && rounds_left-- > 0) broadcast();
    }
  };
  class Notary final : public net::Actor {
   public:
    sim::ProcessId coordinator;
    void on_message(const net::Message&) override {
      send(coordinator, net::kinds::bft_vote);
    }
  };

  const int m = static_cast<int>(state.range(0));
  constexpr int kRounds = 512;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(10), Duration::micros(10)));
    net.set_delivery_batching(batching);
    auto& coord = sim.spawn<Coordinator>("coord");
    net.attach(coord);
    for (int i = 0; i < m; ++i) {
      auto& notary = sim.spawn<Notary>("n" + std::to_string(i));
      net.attach(notary);
      notary.coordinator = coord.id();
      coord.notaries.push_back(notary.id());
    }
    coord.rounds_left = kRounds;
    sim.schedule_at(TimePoint::origin(), [&] { coord.broadcast(); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kRounds * m * 2);
  state.SetLabel("m=" + std::to_string(m) + " notaries");
}
void BM_CommitteeBroadcast(benchmark::State& state) {
  committee_broadcast_loop(state, /*batching=*/true);
}
BENCHMARK(BM_CommitteeBroadcast)->Arg(7)->Arg(13)->Arg(64);
void BM_CommitteeBroadcastUnbatched(benchmark::State& state) {
  committee_broadcast_loop(state, /*batching=*/false);
}
BENCHMARK(BM_CommitteeBroadcastUnbatched)->Arg(7)->Arg(13)->Arg(64);

void BM_NetworkDelivery(benchmark::State& state) {
  // Raw message throughput through the simulator+network stack.
  class Echo final : public net::Actor {
   public:
    int remaining = 0;
    sim::ProcessId peer;
    void on_message(const net::Message&) override {
      if (remaining-- > 0) send(peer, kPing, nullptr);
    }
    using net::Actor::send;
  };
  const int kMessages = 10'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(1), Duration::micros(10)));
    auto& a = sim.spawn<Echo>("a");
    auto& b = sim.spawn<Echo>("b");
    net.attach(a);
    net.attach(b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    a.peer = b.id();
    b.peer = a.id();
    sim.schedule_at(TimePoint::origin(), [&] { a.send(b.id(), kPing, nullptr); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_NetworkDelivery);

}  // namespace

BENCHMARK_MAIN();
