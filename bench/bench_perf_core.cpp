// PERF-core: google-benchmark microbenchmarks of the substrates — event
// queue, network delivery, drift-clock conversion, signature checks,
// end-to-end protocol runs and BFT agreement throughput. These are the
// engineering numbers a downstream user sizes experiments with.

#include <benchmark/benchmark.h>

#include "crypto/certificate.hpp"
#include "exp/scenario.hpp"
#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "proto/timebounded.hpp"
#include "proto/weak/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace xcp;

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    Rng rng(1);
    for (std::int64_t i = 0; i < n; ++i) {
      q.push(TimePoint::micros(rng.next_int(0, 1'000'000)), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_DriftClockConversion(benchmark::State& state) {
  Rng rng(2);
  const auto clock = sim::DriftClock::sample(rng, 1e-3, Duration::millis(10));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 997;
    benchmark::DoNotOptimize(clock.to_local(TimePoint::micros(t)));
    benchmark::DoNotOptimize(clock.to_global(TimePoint::micros(t)));
  }
}
BENCHMARK(BM_DriftClockConversion);

void BM_SignatureVerify(benchmark::State& state) {
  crypto::KeyRegistry keys(3);
  const auto signer = keys.signer_for(sim::ProcessId(1));
  const auto sig = signer.sign(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(sig, 0x1234));
  }
}
BENCHMARK(BM_SignatureVerify);

void BM_QuorumCertVerify(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  crypto::KeyRegistry keys(4);
  std::vector<sim::ProcessId> members;
  for (int i = 0; i < m; ++i) members.push_back(sim::ProcessId(i));
  crypto::Certificate shape;
  shape.kind = crypto::CertKind::kAbort;
  shape.deal_id = 1;
  shape.issuer = sim::ProcessId(999);
  std::vector<crypto::Signature> sigs;
  for (int i = 0; i < m; ++i) {
    sigs.push_back(keys.signer_for(members[static_cast<std::size_t>(i)])
                       .sign(shape.digest()));
  }
  const auto cert = crypto::make_quorum_cert(crypto::CertKind::kAbort, 1,
                                             shape.issuer, sigs);
  const std::size_t threshold = static_cast<std::size_t>(2 * ((m - 1) / 3) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::verify_quorum_cert(keys, cert, members, threshold));
  }
}
BENCHMARK(BM_QuorumCertVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_TimeBoundedPayment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm1_config(n, seed++);
    const auto record = proto::run_time_bounded(cfg);
    benchmark::DoNotOptimize(record.stats.messages_sent);
  }
  state.SetLabel("payments/iteration, n=" + std::to_string(n));
}
BENCHMARK(BM_TimeBoundedPayment)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_WeakProtocolTrusted(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kTrustedParty, 4, seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
}
BENCHMARK(BM_WeakProtocolTrusted);

void BM_WeakProtocolCommittee(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cfg = exp::thm3_config(proto::weak::TmKind::kNotaryCommittee, 2,
                                seed++);
    cfg.env.gst = TimePoint::origin() + Duration::millis(100);
    cfg.notary_count = m;
    const auto record = proto::weak::run_weak(cfg);
    benchmark::DoNotOptimize(record.bob_paid());
  }
  state.SetLabel("m=" + std::to_string(m) + " notaries");
}
BENCHMARK(BM_WeakProtocolCommittee)->Arg(4)->Arg(7)->Arg(13);

void BM_NetworkDelivery(benchmark::State& state) {
  // Raw message throughput through the simulator+network stack.
  class Echo final : public net::Actor {
   public:
    int remaining = 0;
    sim::ProcessId peer;
    void on_message(const net::Message&) override {
      if (remaining-- > 0) send(peer, "ping", nullptr);
    }
    using net::Actor::send;
  };
  const int kMessages = 10'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Network net(sim, std::make_unique<net::SynchronousModel>(
                              Duration::micros(1), Duration::micros(10)));
    auto& a = sim.spawn<Echo>("a");
    auto& b = sim.spawn<Echo>("b");
    net.attach(a);
    net.attach(b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    a.peer = b.id();
    b.peer = a.id();
    sim.schedule_at(TimePoint::origin(), [&] { a.send(b.id(), "ping", nullptr); });
    sim.run();
    benchmark::DoNotOptimize(net.stats().messages_delivered);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_NetworkDelivery);

}  // namespace

BENCHMARK_MAIN();
